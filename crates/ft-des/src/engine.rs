//! The simulation engine: a clock, a component registry, and the event
//! dispatch loop.
//!
//! The engine is deliberately generic: it knows nothing about flows,
//! links, or topologies. A simulation registers [`Component`]s (each a
//! named event handler), seeds initial events, and calls [`Engine::run`].
//! Events are addressed to a single component and dispatched in strict
//! `(time, insertion seq)` order; during dispatch a handler mutates the
//! shared state `S` and may schedule follow-up events through
//! [`Context`], which refuses both `NaN` timestamps and times before the
//! current clock — causality violations surface at the call site, not as
//! a scrambled heap three million events later.
//!
//! Determinism contract (DESIGN.md §14): given the same seeded events and
//! deterministic handlers, the dispatch sequence — and therefore every
//! downstream artifact — is bit-identical across runs and thread counts,
//! because the only ordering authority is the total-order
//! [`EventKey`](crate::EventKey).

use crate::key::{EventKey, TimeError};
use crate::queue::EventQueue;
use std::fmt;
use std::sync::OnceLock;

/// Handle to a registered component; returned by [`Engine::register`] and
/// used to address events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Position of the component in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named event handler. `S` is the simulation state shared by all
/// components of an engine; `E` is the simulation's event payload type.
pub trait Component<S, E> {
    /// Stable name, used in traces and observability output.
    fn name(&self) -> &'static str;

    /// Handles one event addressed to this component. `state` is the
    /// shared simulation state; `ctx` carries the clock and schedules
    /// follow-up events.
    fn on_event(&mut self, event: &E, state: &mut S, ctx: &mut Context<'_, E>);
}

/// Why a schedule request was refused.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleError {
    /// The requested timestamp was `NaN`.
    NotANumber,
    /// The requested timestamp precedes the current simulation clock.
    InPast {
        /// Requested event time.
        at: f64,
        /// Current simulation clock.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotANumber => write!(f, "event time is NaN"),
            ScheduleError::InPast { at, now } => {
                write!(f, "event time {at} precedes simulation clock {now}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<TimeError> for ScheduleError {
    fn from(e: TimeError) -> Self {
        match e {
            TimeError::NotANumber => ScheduleError::NotANumber,
        }
    }
}

/// Handler-side view of the engine during dispatch: read the clock,
/// schedule follow-up events.
pub struct Context<'a, E> {
    now: f64,
    queue: &'a mut EventQueue<(ComponentId, E)>,
    scheduled: &'a mut u64,
}

impl<E> Context<'_, E> {
    /// Current simulation time (the timestamp of the event being
    /// dispatched).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events pending in the queue right now — the queue-depth
    /// reading the ft-sim conversion timeline samples per epoch.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events scheduled by handlers so far in this run (the seeded events
    /// are not counted) — an event-rate proxy for per-epoch telemetry.
    pub fn scheduled_so_far(&self) -> u64 {
        *self.scheduled
    }

    /// Schedules `event` for `target` at absolute time `at`. `at` may
    /// equal [`Context::now`] (the event runs later this same timestamp,
    /// after everything already queued there) but may not precede it.
    pub fn schedule(
        &mut self,
        at: f64,
        target: ComponentId,
        event: E,
    ) -> Result<EventKey, ScheduleError> {
        if at < self.now {
            return Err(ScheduleError::InPast { at, now: self.now });
        }
        let key = self.queue.push(at, (target, event))?;
        *self.scheduled += 1;
        Ok(key)
    }
}

/// Tallies from one [`Engine::run`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events dispatched to handlers.
    pub processed: u64,
    /// Events scheduled by handlers during the run (seeded events not
    /// included).
    pub scheduled: u64,
    /// True when the run stopped at the horizon with events still
    /// pending, false when the queue drained.
    pub truncated: bool,
}

/// Cached ft-obs registry handles: events dispatched, events scheduled
/// from handlers, and completed runs. Flushed once per [`Engine::run`].
struct DesCounters {
    events: &'static ft_obs::Counter,
    scheduled: &'static ft_obs::Counter,
    runs: &'static ft_obs::Counter,
}

fn obs() -> &'static DesCounters {
    static CELL: OnceLock<DesCounters> = OnceLock::new();
    CELL.get_or_init(|| DesCounters {
        events: ft_obs::registry::counter("ft_des_events_total"),
        scheduled: ft_obs::registry::counter("ft_des_scheduled_total"),
        runs: ft_obs::registry::counter("ft_des_runs_total"),
    })
}

/// The event loop: clock + component registry + pending-event queue.
pub struct Engine<S, E> {
    queue: EventQueue<(ComponentId, E)>,
    now: f64,
    components: Vec<Box<dyn Component<S, E>>>,
}

impl<S, E> Default for Engine<S, E> {
    fn default() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: 0.0,
            components: Vec::new(),
        }
    }
}

impl<S, E> Engine<S, E> {
    /// An engine with no components and an empty queue, clock at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component and returns its id. Registration order is
    /// part of the simulation definition (ids index traces).
    pub fn register(&mut self, component: Box<dyn Component<S, E>>) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(component);
        id
    }

    /// Current simulation time: 0 before the first event, afterwards the
    /// timestamp of the most recently dispatched event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seeds an event before (or between) runs. Subject to the same
    /// causality rules as [`Context::schedule`].
    pub fn schedule(
        &mut self,
        at: f64,
        target: ComponentId,
        event: E,
    ) -> Result<EventKey, ScheduleError> {
        if at < self.now {
            return Err(ScheduleError::InPast { at, now: self.now });
        }
        Ok(self.queue.push(at, (target, event))?)
    }

    /// Dispatches events in key order until the queue drains or the next
    /// event lies beyond `horizon` (events at exactly `horizon` run).
    pub fn run(&mut self, state: &mut S, horizon: f64) -> RunStats {
        self.run_observed(state, horizon, |_, _, _| {})
    }

    /// [`Engine::run`] with an observer called for every dispatched event
    /// — `(key, component name, event)` — before its handler runs. The
    /// `ftctl sim` JSONL trace is this observer writing one line per
    /// event.
    pub fn run_observed<F>(&mut self, state: &mut S, horizon: f64, mut observe: F) -> RunStats
    where
        F: FnMut(EventKey, &'static str, &E),
    {
        let mut span = ft_obs::span!("des.run", components = self.components.len());
        let mut stats = RunStats::default();
        while let Some(key) = self.queue.peek_key() {
            if key.time.value() > horizon {
                stats.truncated = true;
                break;
            }
            let Some((key, (target, event))) = self.queue.pop() else {
                break; // unreachable: peek just succeeded
            };
            self.now = key.time.value();
            // Split borrows: the handler gets the queue, the loop keeps
            // the component list.
            let Some(component) = self.components.get_mut(target.index()) else {
                continue; // event addressed to an unregistered id; drop it
            };
            observe(key, component.name(), &event);
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                scheduled: &mut stats.scheduled,
            };
            component.on_event(&event, state, &mut ctx);
            stats.processed += 1;
        }
        let c = obs();
        c.events.add(stats.processed);
        c.scheduled.add(stats.scheduled);
        c.runs.incr();
        if let Some(s) = span.as_mut() {
            s.field("processed", stats.processed);
            s.field("scheduled", stats.scheduled);
            s.field("truncated", stats.truncated);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events and echoes one follow-up per tick until a limit.
    struct Ticker {
        limit: u64,
        period: f64,
    }

    impl Component<Vec<f64>, u64> for Ticker {
        fn name(&self) -> &'static str {
            "ticker"
        }

        fn on_event(&mut self, event: &u64, state: &mut Vec<f64>, ctx: &mut Context<'_, u64>) {
            state.push(ctx.now());
            if *event + 1 < self.limit {
                let me = ComponentId(0);
                ctx.schedule(ctx.now() + self.period, me, event + 1)
                    .unwrap();
            }
        }
    }

    #[test]
    fn dispatch_advances_clock_and_drains() {
        let mut eng: Engine<Vec<f64>, u64> = Engine::new();
        let t = eng.register(Box::new(Ticker {
            limit: 4,
            period: 1.5,
        }));
        eng.schedule(1.0, t, 0).unwrap();
        let mut times = Vec::new();
        let stats = eng.run(&mut times, f64::INFINITY);
        assert_eq!(times, vec![1.0, 2.5, 4.0, 5.5]);
        assert_eq!(eng.now(), 5.5);
        assert_eq!(stats.processed, 4);
        assert_eq!(stats.scheduled, 3);
        assert!(!stats.truncated);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn horizon_truncates_inclusively() {
        let mut eng: Engine<Vec<f64>, u64> = Engine::new();
        let t = eng.register(Box::new(Ticker {
            limit: 100,
            period: 1.0,
        }));
        eng.schedule(0.0, t, 0).unwrap();
        let mut times = Vec::new();
        let stats = eng.run(&mut times, 3.0);
        // events at 0,1,2,3 run; the one at 4 stays pending
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0]);
        assert!(stats.truncated);
        assert_eq!(eng.pending(), 1);
        // a second run continues from where the first stopped
        let stats2 = eng.run(&mut times, 5.0);
        assert_eq!(times.len(), 6);
        assert!(stats2.truncated);
    }

    #[test]
    fn schedule_rejects_past_and_nan() {
        let mut eng: Engine<Vec<f64>, u64> = Engine::new();
        let t = eng.register(Box::new(Ticker {
            limit: 1,
            period: 1.0,
        }));
        assert_eq!(eng.schedule(f64::NAN, t, 0), Err(ScheduleError::NotANumber));
        eng.schedule(2.0, t, 0).unwrap();
        let mut sink = Vec::new();
        eng.run(&mut sink, f64::INFINITY);
        assert_eq!(eng.now(), 2.0);
        let err = eng.schedule(1.0, t, 0).unwrap_err();
        assert_eq!(err, ScheduleError::InPast { at: 1.0, now: 2.0 });
        assert!(err.to_string().contains("precedes"));
    }

    /// Two components at the same timestamp: dispatch order must be the
    /// seeding order, and the observer must see every event.
    struct Tag(&'static str);

    impl Component<Vec<&'static str>, ()> for Tag {
        fn name(&self) -> &'static str {
            self.0
        }

        fn on_event(&mut self, _: &(), state: &mut Vec<&'static str>, _: &mut Context<'_, ()>) {
            state.push(self.0);
        }
    }

    #[test]
    fn equal_time_events_dispatch_in_seed_order() {
        let mut eng: Engine<Vec<&'static str>, ()> = Engine::new();
        let a = eng.register(Box::new(Tag("alpha")));
        let b = eng.register(Box::new(Tag("beta")));
        eng.schedule(1.0, b, ()).unwrap();
        eng.schedule(1.0, a, ()).unwrap();
        eng.schedule(1.0, b, ()).unwrap();
        let mut seen = Vec::new();
        let mut observed = Vec::new();
        eng.run_observed(&mut seen, f64::INFINITY, |key, name, _| {
            observed.push((key.seq, name));
        });
        assert_eq!(seen, vec!["beta", "alpha", "beta"]);
        assert_eq!(observed, vec![(0, "beta"), (1, "alpha"), (2, "beta")]);
    }

    #[test]
    fn unknown_component_events_are_dropped() {
        let mut eng: Engine<Vec<&'static str>, ()> = Engine::new();
        let a = eng.register(Box::new(Tag("only")));
        eng.schedule(1.0, ComponentId(7), ()).unwrap();
        eng.schedule(2.0, a, ()).unwrap();
        let mut seen = Vec::new();
        let stats = eng.run(&mut seen, f64::INFINITY);
        assert_eq!(seen, vec!["only"]);
        assert_eq!(stats.processed, 1);
    }
}
