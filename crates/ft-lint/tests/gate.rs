//! End-to-end tests of the lint gate over the on-disk fixture trees.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn violating_tree_reports_every_rule() {
    let report = ft_lint::run(&fixture("violating")).unwrap();
    let rules: std::collections::BTreeSet<&str> =
        report.violations.iter().map(|v| v.rule).collect();
    for info in ft_lint::rules::RULES {
        assert!(rules.contains(info.id), "missing {}: {rules:?}", info.id);
    }
    assert!(!report.violations.is_empty());
}

#[test]
fn clean_tree_is_clean() {
    let report = ft_lint::run(&fixture("clean")).unwrap();
    assert!(report.is_clean(), "unexpected: {:?}", report.violations);
    assert!(report.files_scanned >= 1);
}

#[test]
fn allowlist_without_reason_is_config_error() {
    let err = ft_lint::run(&fixture("bad-allow")).unwrap_err();
    assert!(err.contains("reason"), "{err}");
}

#[test]
fn violations_carry_location_and_excerpt() {
    let report = ft_lint::run(&fixture("violating")).unwrap();
    let cast = report
        .violations
        .iter()
        .find(|v| v.rule == "truncating-cast")
        .unwrap();
    assert!(cast.path.ends_with("crates/ft-graph/src/lib.rs"));
    assert!(cast.line > 0);
    assert!(cast.excerpt.contains("as u32"));
}

#[test]
fn repo_gate_is_green() {
    // the workspace itself must pass its own gate (same invariant CI
    // enforces via `cargo run -p ft-lint`)
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let report = ft_lint::run(&root).unwrap();
    assert!(
        report.violations.is_empty(),
        "workspace lint violations: {:#?}",
        report.violations
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale lint-allow.toml entries: {:#?}",
        report.unused_allow
    );
    // every suppression carries provenance back to a concrete entry
    for s in &report.suppressed {
        assert!(!s.reason.is_empty(), "suppression without reason: {s:?}");
    }
}
