//! Property test: the v2 lexer's [`ft_lint::lexer::mask_text`] agrees
//! with the retired v1 `mask.rs` scanner on comment/string stripping.
//!
//! The old masking pass lives on here verbatim (module [`reference`]) as
//! the oracle: for generated token soups — snippets of idents, literals,
//! comments, lifetimes, and operators joined by random separators — both
//! passes must produce the same masked text. Known, deliberate
//! divergences are handled explicitly: `br"…"` byte raw strings (which
//! the old scanner never understood) are excluded from the generator,
//! and the oracle carries one normalized v1 bugfix (see
//! `char_literal_len`) where v2's behaviour is the intended one.

use proptest::prelude::*;

/// The v1 `mask.rs` implementation, kept as the reference oracle.
mod reference {
    /// States of the masking scanner.
    enum State {
        Code,
        LineComment,
        BlockComment { depth: usize },
        Str,
        RawStr { hashes: usize },
        Char,
    }

    /// Masks `src`: comments and the interiors of string/char literals
    /// become spaces, everything else is copied through.
    pub fn mask(src: &str) -> String {
        let bytes = src.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut state = State::Code;
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\n' {
                out.push(b'\n');
                if let State::LineComment = state {
                    state = State::Code;
                }
                i += 1;
                continue;
            }
            match state {
                State::Code => {
                    if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        state = State::LineComment;
                        out.push(b' ');
                        i += 1;
                    } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        state = State::BlockComment { depth: 1 };
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b == b'"' {
                        state = State::Str;
                        out.push(b'"');
                        i += 1;
                    } else if b == b'r'
                        && !prev_is_ident(&out)
                        && raw_str_hashes(&bytes[i..]).is_some()
                    {
                        let hashes = raw_str_hashes(&bytes[i..]).unwrap_or(0);
                        state = State::RawStr { hashes };
                        out.resize(out.len() + 2 + hashes, b' ');
                        i += 2 + hashes;
                    } else if b == b'b'
                        && !prev_is_ident(&out)
                        && i + 1 < bytes.len()
                        && bytes[i + 1] == b'"'
                    {
                        out.extend_from_slice(b" \"");
                        state = State::Str;
                        i += 2;
                    } else if b == b'\'' && char_literal_len(&bytes[i..]).is_some() {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                State::LineComment => {
                    out.push(b' ');
                    i += 1;
                }
                State::BlockComment { depth } => {
                    if b == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment { depth: depth - 1 };
                        }
                    } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                        state = State::BlockComment { depth: depth + 1 };
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if b == b'\\' && i + 1 < bytes.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                        // an escaped newline keeps the string open; restore
                        // the line structure the two-space push just broke
                        if bytes[i - 1] == b'\n' {
                            let len = out.len();
                            out[len - 1] = b'\n';
                        }
                    } else if b == b'"' {
                        out.push(b'"');
                        state = State::Code;
                        i += 1;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                State::RawStr { hashes } => {
                    if b == b'"' && closes_raw(&bytes[i..], hashes) {
                        out.resize(out.len() + 1 + hashes, b' ');
                        i += 1 + hashes;
                        state = State::Code;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if b == b'\\' && i + 1 < bytes.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b == b'\'' {
                        out.push(b'\'');
                        state = State::Code;
                        i += 1;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Whether the last emitted byte continues an identifier (so `r` in
    /// `for` or `attr` is not the start of a raw string).
    fn prev_is_ident(out: &[u8]) -> bool {
        out.last()
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
    }

    /// If `bytes` starts a raw string literal (`r"`, `r#"`, …), returns
    /// the number of `#`s.
    fn raw_str_hashes(bytes: &[u8]) -> Option<usize> {
        if bytes.first() != Some(&b'r') {
            return None;
        }
        let mut h = 0;
        while bytes.get(1 + h) == Some(&b'#') {
            h += 1;
        }
        (bytes.get(1 + h) == Some(&b'"')).then_some(h)
    }

    /// Whether a `"` at the start of `bytes` closes a raw string opened
    /// with `hashes` hashes.
    fn closes_raw(bytes: &[u8], hashes: usize) -> bool {
        (1..=hashes).all(|j| bytes.get(j) == Some(&b'#'))
    }

    /// Distinguishes a char literal from a lifetime: returns the
    /// literal's length if `bytes` (starting at `'`) opens a char
    /// literal.
    fn char_literal_len(bytes: &[u8]) -> Option<usize> {
        if bytes.len() < 3 {
            return None;
        }
        if bytes[1] == b'\\' {
            let limit = bytes.len().min(12);
            return (2..limit).find(|&j| bytes[j] == b'\'').map(|j| j + 1);
        }
        let limit = bytes.len().min(6);
        let close = (2..limit).find(|&j| bytes[j] == b'\'')?;
        let inner = &bytes[1..close];
        // v1 bugfix applied to the oracle: an unescaped char literal holds
        // exactly one scalar. The shipped v1 accepted any short run, so
        // `<'a, 'b>` paired two lifetimes into a bogus literal — the one
        // known case where v2 is deliberately better, normalized here so
        // the oracle checks the intended (not the buggy) v1 semantics.
        let one_char = std::str::from_utf8(inner).is_ok_and(|s| s.chars().count() == 1);
        if !one_char {
            return None;
        }
        Some(close + 1)
    }
}

/// Building blocks of the generated token soups. Each snippet is a short,
/// self-contained fragment; soups concatenate them with random
/// separators, so literals, comments, and operators collide in arbitrary
/// orders.
const SNIPPETS: &[&str] = &[
    "let x = 1;",
    "fn f(a: u32) -> u32 { a + 1 }",
    "// line comment with unwrap() inside",
    "/// doc comment",
    "//// divider comment",
    "//! inner doc",
    "/* block comment */",
    "/* nested /* inner */ done */",
    "\"plain string\"",
    "\"escaped \\\" quote\"",
    "\"two\\nlines\"",
    "\"string with // no comment\"",
    "\"multi\nline\"",
    "r\"raw string\"",
    "r#\"raw with # and \" inside\"#",
    "b\"byte string\"",
    "'x'",
    "'\\n'",
    "'\\u{1F600}'",
    "b'q'",
    "<'a, 'static>",
    "&'a str",
    "1.5e3 + 0x1f - 0b101",
    "1..2",
    "v[i % n]",
    "m.insert(k, v);",
    "#[inline]",
    "x == 0.5",
    "a::<B>() => c -> d",
    "let pi_approx = 3.14159;",
    "/* comment with \" quote and 'tick */",
    "match t { _ => 0 }",
];

/// Separators between snippets. The empty separator forces adjacent
/// fragments to collide lexically.
const SEPARATORS: &[&str] = &[" ", "\n", "\t", "", " \n "];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_mask_matches_v1_mask(
        picks in proptest::collection::vec((0usize..SNIPPETS.len(), 0usize..SEPARATORS.len()), 0..40)
    ) {
        let mut soup = String::new();
        for (s, sep) in &picks {
            soup.push_str(SNIPPETS[*s]);
            soup.push_str(SEPARATORS[*sep]);
        }
        let old = reference::mask(&soup);
        let new = ft_lint::lexer::mask_text(&soup);
        prop_assert_eq!(
            &old, &new,
            "mask divergence on soup {:?}\n  v1: {:?}\n  v2: {:?}",
            soup, old, new
        );
    }
}

#[test]
fn masks_agree_on_own_sources() {
    // the strongest fixed corpus we have: every source file of this crate
    for f in [
        "lexer.rs",
        "scope.rs",
        "rules.rs",
        "allow.rs",
        "report.rs",
        "main.rs",
        "lib.rs",
    ] {
        let path = format!("{}/src/{}", env!("CARGO_MANIFEST_DIR"), f);
        let src = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            reference::mask(&src),
            ft_lint::lexer::mask_text(&src),
            "divergence on {path}"
        );
    }
}
