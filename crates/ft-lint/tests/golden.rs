//! Golden-file rule tests.
//!
//! Every rule id in [`ft_lint::rules::RULES`] has exactly one positive
//! and one negative fixture under `tests/fixtures/`:
//!
//! * `<rule>.pos.rs` — minimal source triggering the rule; its findings
//!   are snapshot-compared (`line:rule` per line) against
//!   `<rule>.pos.expect`.
//! * `<rule>.neg.rs` — the compliant counterpart; it must produce zero
//!   violations of any rule.
//!
//! The first line of each fixture is a `//@path: <virtual path>`
//! directive selecting the workspace-relative path the analyzer is told
//! it is looking at (rule scoping is path-driven). The directive line is
//! part of the linted source, so snapshot line numbers match the file
//! as seen in an editor.

use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Reads a fixture, returning its virtual path directive and full text.
fn load(path: &Path) -> (String, String) {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let first = src.lines().next().unwrap_or("");
    let vpath = first
        .strip_prefix("//@path: ")
        .unwrap_or_else(|| panic!("{}: first line must be `//@path: <path>`", path.display()))
        .trim()
        .to_string();
    (vpath, src)
}

/// Formats findings in the snapshot form `line:rule`.
fn snapshot(violations: &[ft_lint::rules::Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("{}:{}\n", v.line, v.rule))
        .collect()
}

#[test]
fn every_rule_has_positive_and_negative_fixture() {
    let dir = fixtures_dir();
    for info in ft_lint::rules::RULES {
        for suffix in ["pos.rs", "pos.expect", "neg.rs"] {
            let p = dir.join(format!("{}.{suffix}", info.id));
            assert!(p.is_file(), "missing fixture {}", p.display());
        }
    }
}

#[test]
fn positive_fixtures_match_snapshots() {
    let dir = fixtures_dir();
    for info in ft_lint::rules::RULES {
        let rs = dir.join(format!("{}.pos.rs", info.id));
        let (vpath, src) = load(&rs);
        let violations = ft_lint::rules::check_file(&vpath, &src);
        let got = snapshot(&violations);
        let expect_path = dir.join(format!("{}.pos.expect", info.id));
        let want = std::fs::read_to_string(&expect_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", expect_path.display()));
        assert_eq!(
            got,
            want,
            "{}: snapshot mismatch (got vs {})",
            rs.display(),
            expect_path.display()
        );
        // a positive fixture must flag its own rule, not a bystander
        assert!(
            violations.iter().any(|v| v.rule == info.id),
            "{}: does not trigger rule {}",
            rs.display(),
            info.id
        );
    }
}

#[test]
fn negative_fixtures_are_silent() {
    let dir = fixtures_dir();
    for info in ft_lint::rules::RULES {
        let rs = dir.join(format!("{}.neg.rs", info.id));
        let (vpath, src) = load(&rs);
        let violations = ft_lint::rules::check_file(&vpath, &src);
        assert!(
            violations.is_empty(),
            "{}: expected no findings, got {violations:#?}",
            rs.display()
        );
    }
}

#[test]
fn no_orphan_fixtures() {
    // every fixture file belongs to a cataloged rule — catches typos in
    // fixture names and rules removed without their corpus
    let dir = fixtures_dir();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        let stem = name
            .trim_end_matches(".pos.rs")
            .trim_end_matches(".pos.expect")
            .trim_end_matches(".neg.rs");
        assert!(
            ft_lint::rules::rule_info(stem).is_some(),
            "fixture {name} does not match any cataloged rule id"
        );
    }
}
