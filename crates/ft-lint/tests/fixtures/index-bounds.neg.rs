//@path: crates/ft-graph/src/fixture.rs
fn f(v: &[u32], i: usize) -> u32 {
    // bounds: caller guarantees i + 1 < v.len()
    v[i + 1]
}
