//@path: crates/ft-sim/src/fixture.rs
use std::collections::HashMap;
fn total(m: &HashMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_k, v) in m {
        s += v;
    }
    s
}
