//@path: crates/ft-sim/src/fixture.rs
use std::collections::BTreeMap;
fn total(m: &BTreeMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_k, v) in m {
        s += v;
    }
    s
}
