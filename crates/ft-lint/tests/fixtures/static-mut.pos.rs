//@path: crates/ft-core/src/fixture.rs
static mut COUNTER: u32 = 0;
