//@path: crates/ft-serve/src/fixture.rs
use std::sync::atomic::{AtomicBool, Ordering};
fn ready(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}
