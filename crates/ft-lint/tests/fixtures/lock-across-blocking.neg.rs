//@path: crates/ft-serve/src/fixture.rs
use std::sync::mpsc::Sender;
use std::sync::Mutex;
fn forward(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v);
}
