//@path: crates/ft-core/src/fixture.rs
use std::sync::atomic::AtomicU32;
static COUNTER: AtomicU32 = AtomicU32::new(0);
