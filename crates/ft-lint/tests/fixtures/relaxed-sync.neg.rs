//@path: crates/ft-serve/src/fixture.rs
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
fn ready(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
fn count(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
