//@path: crates/ft-graph/src/fixture.rs
pub fn naked() {}
