//@path: crates/ft-graph/src/par.rs
fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
