//@path: crates/ft-obs/src/fixture.rs
fn stamp() {
    let _ = std::time::Instant::now();
}
