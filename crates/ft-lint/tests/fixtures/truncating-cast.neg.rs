//@path: crates/ft-graph/src/fixture.rs
fn f(i: usize) -> Option<u32> {
    u32::try_from(i).ok()
}
