//@path: crates/ft-graph/src/fixture.rs
fn f(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}
