//@path: crates/ft-mcf/src/fixture.rs
fn stamp() {
    let _ = std::time::Instant::now();
}
