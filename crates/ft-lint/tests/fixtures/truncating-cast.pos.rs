//@path: crates/ft-graph/src/fixture.rs
fn f(i: usize) -> u32 {
    i as u32
}
