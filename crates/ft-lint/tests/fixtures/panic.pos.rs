//@path: crates/ft-graph/src/fixture.rs
fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
