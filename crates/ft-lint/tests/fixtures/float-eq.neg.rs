//@path: crates/ft-control/src/fixture.rs
fn f(x: f64) -> bool {
    (x - 0.25).abs() < 1e-9
}
