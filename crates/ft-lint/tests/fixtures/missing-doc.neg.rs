//@path: crates/ft-graph/src/fixture.rs
/// Documented, as every public function must be.
pub fn clothed() {}
