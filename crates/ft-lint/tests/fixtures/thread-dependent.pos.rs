//@path: crates/ft-serve/src/fixture.rs
fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
