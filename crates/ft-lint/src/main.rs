//! CLI entry point: `cargo run -p ft-lint [-- [flags] [<root>]]`.
//!
//! Flags:
//! * `--json <file|->` — write the `ft-lint/2` JSON report.
//! * `--sarif <file|->` — write a SARIF 2.1.0 log.
//! * `--fix-allow` — rewrite `lint-allow.toml`, deleting unused entries.
//!
//! Exit codes: 0 clean, 1 violations or unused allow entries, 2
//! configuration error (unreadable tree, malformed `lint-allow.toml`, or
//! bad usage).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ft-lint [--json <file|->] [--sarif <file|->] [--fix-allow] [<root>]");
    ExitCode::from(2)
}

fn emit(target: &str, content: &str) -> Result<(), String> {
    if target == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(target, content).map_err(|e| format!("writing {target}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json: Option<String> = None;
    let mut sarif: Option<String> = None;
    let mut opts = ft_lint::Options::default();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(v) => json = Some(v.clone()),
                None => return usage(),
            },
            "--sarif" => match it.next() {
                Some(v) => sarif = Some(v.clone()),
                None => return usage(),
            },
            "--fix-allow" => opts.fix_allow = true,
            "--help" | "-h" => {
                println!(
                    "usage: ft-lint [--json <file|->] [--sarif <file|->] [--fix-allow] [<root>]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("ft-lint: unknown flag {flag:?}");
                return usage();
            }
            positional => {
                if root.is_some() {
                    eprintln!("ft-lint: configuration error: more than one root given");
                    return usage();
                }
                root = Some(PathBuf::from(positional));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match ft_lint::run_with(&root, &opts) {
        Ok(report) => {
            let root_str = root.to_string_lossy().replace('\\', "/");
            if let Some(t) = &json {
                if let Err(e) = emit(t, &ft_lint::report::to_json(&report, &root_str)) {
                    eprintln!("ft-lint: configuration error: {e}");
                    return ExitCode::from(2);
                }
            }
            if let Some(t) = &sarif {
                if let Err(e) = emit(t, &ft_lint::report::to_sarif(&report)) {
                    eprintln!("ft-lint: configuration error: {e}");
                    return ExitCode::from(2);
                }
            }
            print!("{}", ft_lint::report::to_text(&report));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ft-lint: configuration error: {e}");
            ExitCode::from(2)
        }
    }
}
