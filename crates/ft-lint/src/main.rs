//! CLI entry point: `cargo run -p ft-lint [-- <root>]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 configuration error
//! (unreadable tree or malformed `lint-allow.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 1 {
        eprintln!("ft-lint: configuration error: expected at most one argument (the workspace root), got {}", args.len());
        eprintln!("usage: ft-lint [<root>]");
        return ExitCode::from(2);
    }
    let root = args
        .first()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match ft_lint::run(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            }
            let n = report.violations.len();
            println!(
                "ft-lint: {} file(s) scanned, {} violation(s), {} suppressed via lint-allow.toml",
                report.files_scanned, n, report.suppressed
            );
            if n == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ft-lint: configuration error: {e}");
            ExitCode::from(2)
        }
    }
}
