//! A zero-dependency Rust lexer producing a full token stream with byte
//! spans, replacing the old `mask.rs` line-masking approximation.
//!
//! The lexer handles the constructs that defeat regex scanning natively:
//! nested block comments, raw strings (`r"…"`, `r#"…"#`, `br#"…"#`), byte
//! strings and byte chars, escape sequences, lifetimes vs char literals,
//! raw identifiers (`r#match`), and multi-character operators. Comments
//! stay in the stream (flagged as trivia) so doc-comment-sensitive rules
//! can see them; every token records its byte span plus 1-based line and
//! column, so violations point at real source locations.
//!
//! The lexer never fails: unterminated literals or comments extend to end
//! of input, and any byte it cannot classify becomes a one-byte
//! [`Kind::Punct`] token. Lexing arbitrary bytes is total — a property the
//! mask-equivalence test (`tests/mask_equiv.rs`) leans on.

/// Token classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the identifier.
    Lifetime,
    /// Integer literal (any base, including suffixed forms like `1u32`).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-9`, `2f64`).
    Float,
    /// String or byte-string literal (`"…"`, `b"…"`), escapes included.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `//` comment; `doc` marks `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`, not `////…`).
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` marks `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Operator or punctuation; multi-character operators (`==`, `::`,
    /// `->`, `..=`, …) are single tokens.
    Punct,
}

impl Kind {
    /// Whether the token is trivia (comments) rather than code.
    pub fn is_trivia(self) -> bool {
        matches!(self, Kind::LineComment { .. } | Kind::BlockComment { .. })
    }
}

/// One lexed token: kind plus source location.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// Byte offset of the first byte (inclusive).
    pub lo: usize,
    /// Byte offset one past the last byte (exclusive).
    pub hi: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte within its line.
    pub col: usize,
}

/// A fully lexed source file.
pub struct Lexed<'a> {
    src: &'a str,
    /// All tokens in source order, trivia included.
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line (line 1 first).
    line_starts: Vec<usize>,
}

impl<'a> Lexed<'a> {
    /// The source text of a token.
    pub fn text(&self, t: &Token) -> &'a str {
        self.src.get(t.lo..t.hi).unwrap_or("")
    }

    /// The full source this lex was produced from.
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// Number of lines in the source (at least 1).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The trimmed text of a 1-based source line (empty if out of range).
    pub fn line_text(&self, line: usize) -> &'a str {
        let Some(&start) = self.line_starts.get(line.wrapping_sub(1)) else {
            return "";
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.src.len(), |&next| next);
        self.src.get(start..end).unwrap_or("").trim()
    }
}

/// Multi-character operators, longest first so maximal-munch matching is a
/// simple prefix scan.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Cursor state shared by the lexing helpers: the input plus the current
/// byte offset and line bookkeeping.
struct Cursor<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    /// The byte at offset `i + ahead`, or 0 past the end (0 never occurs
    /// in real source positions we dispatch on, so it acts as a sentinel).
    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.i + ahead).copied().unwrap_or(0)
    }

    /// Whether the cursor is past the last byte.
    fn done(&self) -> bool {
        self.i >= self.bytes.len()
    }
}

/// Whether a byte continues an identifier. Multi-byte UTF-8 continuation
/// bytes count, so non-ASCII identifiers lex as single tokens.
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Whether a byte can start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Total: never fails on any input.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let mut c = Cursor { bytes, i: 0 };
    let mut tokens = Vec::new();
    // `line` tracks the 1-based line of the cursor; advanced on newlines.
    let mut line = 1usize;
    let mut line_start = 0usize;
    while !c.done() {
        let b = c.peek(0);
        if b == b'\n' {
            c.i += 1;
            line += 1;
            line_start = c.i;
            continue;
        }
        if b == b' ' || b == b'\t' || b == b'\r' {
            c.i += 1;
            continue;
        }
        let lo = c.i;
        let tok_line = line;
        let tok_col = lo - line_start + 1;
        let kind = scan_token(&mut c);
        let hi = c.i.max(lo + 1);
        // a scanner that failed to advance would loop forever; force one
        // byte of progress (scan_token always advances, this is belt and
        // braces for the total-function guarantee)
        c.i = hi;
        // multi-line tokens (block comments, strings) advance `line`
        for j in lo..hi {
            if c.bytes.get(j) == Some(&b'\n') {
                line += 1;
                line_start = j + 1;
            }
        }
        tokens.push(Token {
            kind,
            lo,
            hi,
            line: tok_line,
            col: tok_col,
        });
    }
    Lexed {
        src,
        tokens,
        line_starts,
    }
}

/// Scans one token starting at the cursor, advancing it past the token.
fn scan_token(c: &mut Cursor<'_>) -> Kind {
    let b = c.peek(0);
    // comments
    if b == b'/' && c.peek(1) == b'/' {
        return scan_line_comment(c);
    }
    if b == b'/' && c.peek(1) == b'*' {
        return scan_block_comment(c);
    }
    // raw strings & raw identifiers: r" r#" r#ident
    if b == b'r' || b == b'b' {
        if let Some(kind) = scan_prefixed_literal(c) {
            return kind;
        }
    }
    if b == b'"' {
        scan_string(c);
        return Kind::Str;
    }
    if b == b'\'' {
        return scan_quote(c);
    }
    if b.is_ascii_digit() {
        return scan_number(c);
    }
    if is_ident_start(b) {
        while is_ident_byte(c.peek(0)) {
            c.i += 1;
        }
        return Kind::Ident;
    }
    // operators: maximal munch over the multi-char table
    for op in MULTI_PUNCT {
        let ob = op.as_bytes();
        if (0..ob.len()).all(|j| c.peek(j) == ob[j]) {
            c.i += ob.len();
            return Kind::Punct;
        }
    }
    c.i += 1;
    Kind::Punct
}

/// Scans `//…` to end of line (newline excluded from the token).
fn scan_line_comment(c: &mut Cursor<'_>) -> Kind {
    // `///` and `//!` are docs; `////…` dividers are plain comments
    let doc = (c.peek(2) == b'/' && c.peek(3) != b'/') || c.peek(2) == b'!';
    while !c.done() && c.peek(0) != b'\n' {
        c.i += 1;
    }
    Kind::LineComment { doc }
}

/// Scans `/* … */` with nesting; unterminated comments run to the end.
fn scan_block_comment(c: &mut Cursor<'_>) -> Kind {
    // `/**` is a doc comment, but `/**/` is an empty plain comment
    let doc = (c.peek(2) == b'*' && c.peek(3) != b'/') || c.peek(2) == b'!';
    c.i += 2;
    let mut depth = 1usize;
    while !c.done() && depth > 0 {
        if c.peek(0) == b'*' && c.peek(1) == b'/' {
            depth -= 1;
            c.i += 2;
        } else if c.peek(0) == b'/' && c.peek(1) == b'*' {
            depth += 1;
            c.i += 2;
        } else {
            c.i += 1;
        }
    }
    Kind::BlockComment { doc }
}

/// Handles `r`/`b`-prefixed literals and raw identifiers: `r"…"`,
/// `r#"…"#`, `b"…"`, `br"…"`, `b'…'`, `r#ident`. Returns `None` when the
/// prefix is just the start of an ordinary identifier.
fn scan_prefixed_literal(c: &mut Cursor<'_>) -> Option<Kind> {
    let b0 = c.peek(0);
    // b" byte string
    if b0 == b'b' && c.peek(1) == b'"' {
        c.i += 1;
        scan_string(c);
        return Some(Kind::Str);
    }
    // b' byte char
    if b0 == b'b' && c.peek(1) == b'\'' {
        c.i += 1;
        scan_char(c);
        return Some(Kind::Char);
    }
    // r…" / br…" raw (byte) strings; r#ident raw identifiers
    let raw_at = if b0 == b'r' {
        0
    } else if b0 == b'b' && c.peek(1) == b'r' {
        1
    } else {
        return None;
    };
    let mut hashes = 0usize;
    while c.peek(raw_at + 1 + hashes) == b'#' {
        hashes += 1;
    }
    let after = c.peek(raw_at + 1 + hashes);
    if after == b'"' {
        c.i += raw_at + 2 + hashes; // past prefix, hashes, opening quote
        loop {
            if c.done() {
                break;
            }
            if c.peek(0) == b'"' && (1..=hashes).all(|j| c.peek(j) == b'#') {
                c.i += 1 + hashes;
                break;
            }
            c.i += 1;
        }
        return Some(Kind::RawStr);
    }
    if raw_at == 0 && hashes == 1 && is_ident_start(after) {
        // raw identifier r#match
        c.i += 2;
        while is_ident_byte(c.peek(0)) {
            c.i += 1;
        }
        return Some(Kind::Ident);
    }
    None
}

/// Scans a `"…"` string body starting at the opening quote, honouring
/// escapes; unterminated strings run to the end of input.
fn scan_string(c: &mut Cursor<'_>) {
    c.i += 1; // opening quote
    while !c.done() {
        match c.peek(0) {
            b'\\' if c.i + 1 < c.bytes.len() => c.i += 2,
            b'"' => {
                c.i += 1;
                return;
            }
            _ => c.i += 1,
        }
    }
}

/// Scans a `'` token: either a char literal or a lifetime.
fn scan_quote(c: &mut Cursor<'_>) -> Kind {
    let next = c.peek(1);
    // 'a followed by anything but a closing quote is a lifetime; this also
    // covers '_ and 'static
    if is_ident_start(next) && c.peek(2) != b'\'' {
        c.i += 2;
        while is_ident_byte(c.peek(0)) {
            c.i += 1;
        }
        return Kind::Lifetime;
    }
    scan_char(c);
    Kind::Char
}

/// Scans a char literal starting at the opening quote. Bounded: gives up
/// (emitting what it has) if no closing quote appears within a short
/// window, so a stray `'` cannot swallow the rest of the file.
fn scan_char(c: &mut Cursor<'_>) {
    let start = c.i;
    c.i += 1; // opening quote
    while !c.done() && c.i - start < 12 {
        match c.peek(0) {
            b'\\' if c.i + 1 < c.bytes.len() => c.i += 2,
            b'\'' => {
                c.i += 1;
                return;
            }
            _ => c.i += 1,
        }
    }
    // no closing quote nearby: treat the lone quote as a one-byte token
    c.i = start + 1;
}

/// Scans a numeric literal, classifying it as [`Kind::Int`] or
/// [`Kind::Float`].
fn scan_number(c: &mut Cursor<'_>) -> Kind {
    // hex/octal/binary stay integers regardless of suffix letters
    if c.peek(0) == b'0' && matches!(c.peek(1), b'x' | b'o' | b'b') {
        c.i += 2;
        while c.peek(0).is_ascii_alphanumeric() || c.peek(0) == b'_' {
            c.i += 1;
        }
        return Kind::Int;
    }
    let mut float = false;
    while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
        c.i += 1;
    }
    // fractional part: a dot followed by a digit, or a trailing dot that
    // does not start a range/method call (`1..2`, `1.max(2)`)
    if c.peek(0) == b'.' {
        if c.peek(1).is_ascii_digit() {
            float = true;
            c.i += 1;
            while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
                c.i += 1;
            }
        } else if c.peek(1) != b'.' && !is_ident_start(c.peek(1)) {
            float = true;
            c.i += 1;
        }
    }
    // exponent
    if matches!(c.peek(0), b'e' | b'E')
        && (c.peek(1).is_ascii_digit()
            || (matches!(c.peek(1), b'+' | b'-') && c.peek(2).is_ascii_digit()))
    {
        float = true;
        c.i += 1;
        if matches!(c.peek(0), b'+' | b'-') {
            c.i += 1;
        }
        while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
            c.i += 1;
        }
    }
    // type suffix (u32, f64, …): f-suffixes force float
    if is_ident_start(c.peek(0)) {
        let suffix_start = c.i;
        while is_ident_byte(c.peek(0)) {
            c.i += 1;
        }
        let suffix = c.bytes.get(suffix_start..c.i).unwrap_or(&[]);
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
    }
    if float {
        Kind::Float
    } else {
        Kind::Int
    }
}

/// Reproduces the comment/string-stripping view the old `mask.rs` pass
/// produced, but derived from the token stream: comments and literal
/// interiors become spaces, string/char delimiters and newlines are kept,
/// raw strings are blanked entirely. Retained for the mask-equivalence
/// property test and as a debugging aid.
pub fn mask_text(src: &str) -> String {
    let lexed = lex(src);
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    let blank = |out: &mut Vec<u8>, lo: usize, hi: usize| {
        for slot in out.iter_mut().take(hi).skip(lo) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    for t in &lexed.tokens {
        match t.kind {
            Kind::LineComment { .. } | Kind::BlockComment { .. } | Kind::RawStr => {
                blank(&mut out, t.lo, t.hi);
            }
            Kind::Str => {
                // keep the quote delimiters, blank everything else
                // (including a `b` prefix, matching the old mask)
                let bytes = src.as_bytes();
                let first_quote = (t.lo..t.hi).find(|&j| bytes.get(j) == Some(&b'"'));
                let last = t.hi.saturating_sub(1);
                let closed = t.hi - t.lo >= 2
                    && bytes.get(last) == Some(&b'"')
                    && first_quote.is_some_and(|q| q < last);
                blank(&mut out, t.lo, t.hi);
                if let Some(slot) = first_quote.and_then(|q| out.get_mut(q)) {
                    *slot = b'"';
                }
                if closed {
                    if let Some(slot) = out.get_mut(last) {
                        *slot = b'"';
                    }
                }
            }
            Kind::Char => {
                // keep any prefix (`b`) and the quote delimiters
                let bytes = src.as_bytes();
                let first_quote = (t.lo..t.hi).find(|&j| bytes.get(j) == Some(&b'\''));
                let last = t.hi.saturating_sub(1);
                let closed = bytes.get(last) == Some(&b'\'');
                let interior_from = first_quote.map_or(t.lo, |q| q + 1);
                blank(&mut out, interior_from, t.hi);
                if closed && first_quote.is_some_and(|q| q < last) {
                    if let Some(slot) = out.get_mut(last) {
                        *slot = b'\'';
                    }
                }
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        let l = lex(src);
        l.tokens
            .iter()
            .map(|t| (t.kind, l.text(t).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.unwrap();");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let ks = kinds("a == b != c ..= d :: e -> f");
        let ops: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "..=", "::", "->"]);
    }

    #[test]
    fn strings_and_raw_strings() {
        let ks = kinds(r####"let s = "a\"b"; let r = r#"x"y"#; let b = b"z";"####);
        let lits: Vec<(Kind, &str)> = ks
            .iter()
            .filter(|(k, _)| matches!(k, Kind::Str | Kind::RawStr))
            .map(|(k, t)| (*k, t.as_str()))
            .collect();
        assert_eq!(
            lits,
            vec![
                (Kind::Str, r#""a\"b""#),
                (Kind::RawStr, r####"r#"x"y"#"####),
                (Kind::Str, r#"b"z""#),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* a /* b */ c */ x");
        assert!(matches!(ks[0].0, Kind::BlockComment { doc: false }));
        assert_eq!(ks[1].1, "x");
    }

    #[test]
    fn doc_comment_flags() {
        let ks = kinds("/// doc\n//! inner\n//// divider\n// plain\n/** block */\n");
        let docs: Vec<bool> = ks
            .iter()
            .map(|(k, _)| match k {
                Kind::LineComment { doc } | Kind::BlockComment { doc } => *doc,
                _ => false,
            })
            .collect();
        assert_eq!(docs, [true, true, false, false, true]);
    }

    #[test]
    fn numbers_classified() {
        let ks = kinds("1 1.0 1. 1e-9 2f64 0xff 1u32 1..2 1.max(2)");
        let nums: Vec<(Kind, &str)> = ks
            .iter()
            .filter(|(k, _)| matches!(k, Kind::Int | Kind::Float))
            .map(|(k, t)| (*k, t.as_str()))
            .collect();
        assert_eq!(
            nums,
            vec![
                (Kind::Int, "1"),
                (Kind::Float, "1.0"),
                (Kind::Float, "1."),
                (Kind::Float, "1e-9"),
                (Kind::Float, "2f64"),
                (Kind::Int, "0xff"),
                (Kind::Int, "1u32"),
                (Kind::Int, "1"),
                (Kind::Int, "2"),
                (Kind::Int, "1"),
                (Kind::Int, "2"),
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#match = 1;");
        assert_eq!(ks[1].1, "r#match");
        assert_eq!(ks[1].0, Kind::Ident);
    }

    #[test]
    fn lines_and_columns() {
        let l = lex("a\n  b\n");
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[0].col, 1);
        assert_eq!(l.tokens[1].line, 2);
        assert_eq!(l.tokens[1].col, 3);
    }

    #[test]
    fn mask_text_strips_strings_and_comments() {
        let m = mask_text("let s = \"panic!\"; // unwrap()\n/* x */ let t = r#\"y\"#;\n");
        assert!(!m.contains("panic"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains('y'));
        assert!(m.contains("let s = \""));
        assert!(m.contains("let t ="));
        assert_eq!(
            m.len(),
            "let s = \"panic!\"; // unwrap()\n/* x */ let t = r#\"y\"#;\n".len()
        );
    }

    #[test]
    fn total_on_garbage() {
        // arbitrary bytes never panic and never lose line structure
        let src = "∞ §§ \" unterminated\n'x /* nope\n";
        let l = lex(src);
        assert!(!l.tokens.is_empty());
        assert_eq!(mask_text(src).split('\n').count(), src.split('\n').count());
    }
}
