//! `ft-lint` — the workspace static-analysis gate.
//!
//! A dependency-free analyzer enforcing the project's hygiene,
//! determinism, and concurrency policy over every `.rs` file under
//! `crates/` and `src/`. v2 replaces the masked-regex line scanner with a
//! real token pipeline:
//!
//! * [`lexer`] — a total, zero-dependency Rust lexer producing the full
//!   token stream with byte spans and line/column info; raw strings,
//!   lifetimes, and nested block comments are handled natively.
//! * [`scope`] — path classification (strict/lib/exempt, deterministic
//!   and wallclock crate sets) and a per-file [`scope::FileModel`]
//!   resolving code tokens, brace depth, `#[cfg(test)]` regions, and
//!   which local names are unordered containers.
//! * [`rules`] — the three rule packs (hygiene, determinism, concurrency)
//!   with the catalog in [`rules::RULES`]; see DESIGN.md §13.
//! * [`allow`] — `lint-allow.toml` suppression with mandatory reasons,
//!   provenance tracking, and a hard error for entries that suppress
//!   nothing.
//! * [`report`] — human, JSON (`ft-lint/2`), and SARIF 2.1.0 renderers.
//!
//! Tests, benches, examples, binaries, and fixture files are exempt — the
//! policy targets the library surface that the paper-reproduction results
//! depend on.

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

use rules::Violation;
use std::path::{Path, PathBuf};

/// A violation that was suppressed by a `lint-allow.toml` entry, with the
/// provenance needed to audit the suppression.
#[derive(Debug)]
pub struct Suppression {
    /// The suppressed violation.
    pub violation: Violation,
    /// Index of the covering entry in `lint-allow.toml` (0-based, in file
    /// order).
    pub entry_index: usize,
    /// The entry's `reason` string.
    pub reason: String,
}

/// Outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Violations not covered by the allowlist, ordered by path, line,
    /// column, rule.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Violations suppressed by `lint-allow.toml`, with provenance.
    pub suppressed: Vec<Suppression>,
    /// Allowlist entries (index, entry) that suppressed nothing — these
    /// make the run dirty: stale suppressions hide future regressions.
    pub unused_allow: Vec<(usize, allow::AllowEntry)>,
}

impl Report {
    /// A run is clean when nothing is flagged and no allow entry is
    /// stale.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allow.is_empty()
    }
}

/// Knobs of [`run_with`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Options {
    /// Rewrite `lint-allow.toml` in place, dropping unused entries,
    /// instead of reporting them as dirty.
    pub fix_allow: bool,
}

/// Lints the workspace rooted at `root` with default options.
///
/// # Errors
/// Returns a message for unreadable files/directories, a root containing
/// no `.rs` files at all (a mistyped path must not read as a clean run),
/// or a malformed allowlist (including entries without a reason).
pub fn run(root: &Path) -> Result<Report, String> {
    run_with(root, &Options::default())
}

/// Lints the workspace rooted at `root`. Reads `lint-allow.toml` at the
/// root if present; with [`Options::fix_allow`] set, unused entries are
/// deleted from the file instead of dirtying the report.
///
/// # Errors
/// See [`run`].
pub fn run_with(root: &Path, opts: &Options) -> Result<Report, String> {
    let allow_path = root.join("lint-allow.toml");
    let allow_src = if allow_path.exists() {
        Some(
            std::fs::read_to_string(&allow_path)
                .map_err(|e| format!("reading {}: {e}", allow_path.display()))?,
        )
    } else {
        None
    };
    let entries = match &allow_src {
        Some(src) => allow::parse(src)?,
        None => Vec::new(),
    };
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {}/crates or {}/src — wrong root?",
            root.display(),
            root.display()
        ));
    }
    files.sort();
    let mut violations = Vec::new();
    let mut suppressed: Vec<Suppression> = Vec::new();
    let mut used = vec![false; entries.len()];
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        for v in rules::check_file(&rel, &src) {
            match allow::covering_entry(&entries, &v) {
                Some(i) => {
                    if let Some(slot) = used.get_mut(i) {
                        *slot = true;
                    }
                    let reason = entries.get(i).map(|e| e.reason.clone()).unwrap_or_default();
                    suppressed.push(Suppression {
                        violation: v,
                        entry_index: i,
                        reason,
                    });
                }
                None => violations.push(v),
            }
        }
    }
    let mut unused_allow: Vec<(usize, allow::AllowEntry)> = entries
        .iter()
        .enumerate()
        .filter(|(i, _)| !used.get(*i).copied().unwrap_or(false))
        .map(|(i, e)| (i, e.clone()))
        .collect();
    if opts.fix_allow && !unused_allow.is_empty() {
        if let Some(src) = &allow_src {
            let fixed = allow::rewrite(src, &entries, &|i| used.get(i).copied().unwrap_or(false));
            std::fs::write(&allow_path, fixed)
                .map_err(|e| format!("writing {}: {e}", allow_path.display()))?;
            unused_allow.clear();
        }
    }
    Ok(Report {
        violations,
        files_scanned: files.len(),
        suppressed,
        unused_allow,
    })
}

/// Recursively collects `.rs` files, skipping `target/` and the lint
/// fixture corpora (they contain violations on purpose).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == "fixtures")
            {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
