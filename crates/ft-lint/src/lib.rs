//! `ft-lint` — the workspace static-analysis gate.
//!
//! A dependency-free linter enforcing the project's error-handling and
//! numeric-hygiene policy over every `.rs` file under `crates/` and `src/`:
//!
//! 1. **panic** — no `panic!` / `.unwrap()` / `.expect(` / `unreachable!`
//!    in library code of the strict crates (`ft-graph`, `ft-lp`, `ft-mcf`,
//!    `ft-core`, `ft-metrics`, `ft-serve`); return the crate's error enums
//!    instead.
//! 2. **index-bounds** — arithmetic index expressions (`v[i + 1]`) in
//!    strict library code need a bounds comment on the same or previous
//!    line.
//! 3. **float-eq** — no `==`/`!=` against float literals anywhere in
//!    library code; compare integers or use an epsilon.
//! 4. **truncating-cast** — no `as u32`-style narrowing casts on node
//!    indices in strict library code; use `try_into()` or
//!    `ft_graph::id32`.
//! 5. **missing-doc** — every `pub fn` in strict library code carries a
//!    doc comment.
//!
//! Suppression happens only through `lint-allow.toml` (see
//! [`allow`]); entries without a reason are a configuration error.
//!
//! Tests, benches, examples, binaries, and fixture files are exempt — the
//! policy targets the library surface that the paper-reproduction results
//! depend on.

pub mod allow;
pub mod mask;
pub mod rules;

use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Violations suppressed by `lint-allow.toml`.
    pub suppressed: usize,
}

/// Lints the workspace rooted at `root`. Reads `lint-allow.toml` at the
/// root if present.
///
/// # Errors
/// Returns a message for unreadable files/directories, a root containing
/// no `.rs` files at all (a mistyped path must not read as a clean run),
/// or a malformed allowlist (including entries without a reason).
pub fn run(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("lint-allow.toml");
    let entries = if allow_path.exists() {
        let src = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allow::parse(&src)?
    } else {
        Vec::new()
    };
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {}/crates or {}/src — wrong root?",
            root.display(),
            root.display()
        ));
    }
    files.sort();
    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        for v in rules::check_file(&rel, &src) {
            if allow::is_allowed(&entries, &v) {
                suppressed += 1;
            } else {
                violations.push(v);
            }
        }
    }
    Ok(Report {
        violations,
        files_scanned: files.len(),
        suppressed,
    })
}

/// Recursively collects `.rs` files, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
