//! Scope model: path classification plus the per-file token model the
//! rule packs run against.
//!
//! Classification decides *which* rules apply to a file (by crate and
//! path); the [`FileModel`] resolves *where* inside the file they apply —
//! brace depth, `#[cfg(test)]` regions, imports of unordered containers,
//! and the `let`/parameter bindings whose values are `HashMap`/`HashSet`.
//! Together they replace the regex-and-line-mask guesswork of ft-lint v1
//! with token-accurate answers.

use crate::lexer::{self, Kind, Lexed, Token};
use std::collections::BTreeSet;

/// How strictly a file is checked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Full rule set (library code of the strict crates).
    Strict,
    /// Portable rules only (float-eq plus the determinism/concurrency
    /// packs where their crate filters apply).
    Lib,
    /// No rules (tests, benches, examples, binaries, fixtures).
    Exempt,
}

/// Crates whose library code is held to the full rule set.
pub const STRICT_CRATES: &[&str] = &[
    "ft-graph",
    "ft-lp",
    "ft-mcf",
    "ft-core",
    "ft-metrics",
    "ft-des",
    "ft-serve",
    "ft-obs",
    "ft-lint",
];

/// Crates whose outputs must be bit-identical across thread counts and
/// runs — the determinism pack's `unordered-iter` rule applies here.
pub const DETERMINISTIC_CRATES: &[&str] = &["ft-graph", "ft-mcf", "ft-des", "ft-sim", "ft-metrics"];

/// Crates allowed to read wall clocks (`wallclock` rule exemption):
/// observability and benchmarking are *about* real time.
pub const WALLCLOCK_CRATES: &[&str] = &["ft-obs", "ft-bench"];

/// The one file allowed to inspect thread counts and identities: the
/// deterministic worker pool itself.
pub const THREAD_SOURCE_FILE: &str = "crates/ft-graph/src/par.rs";

/// Path components that exempt a file wholesale.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples", "bin", "fixtures", "target"];

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(path: &str) -> Scope {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.iter().any(|p| EXEMPT_DIRS.contains(p)) {
        return Scope::Exempt;
    }
    if !path.ends_with(".rs") {
        return Scope::Exempt;
    }
    if parts.first() == Some(&"crates") && parts.get(2) == Some(&"src") {
        let krate = parts.get(1).copied().unwrap_or("");
        if STRICT_CRATES.contains(&krate) {
            return Scope::Strict;
        }
        // a crate's `src/main.rs` is binary code, exempt like other bins
        if parts.last() == Some(&"main.rs") {
            return Scope::Exempt;
        }
        return Scope::Lib;
    }
    if parts.first() == Some(&"src") {
        if parts.last() == Some(&"main.rs") {
            return Scope::Exempt;
        }
        return Scope::Lib;
    }
    Scope::Exempt
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`), or
/// `None` for the root `src/` tree.
pub fn crate_of(path: &str) -> Option<&str> {
    let mut parts = path.split('/');
    (parts.next() == Some("crates"))
        .then(|| parts.next().unwrap_or(""))
        .filter(|s| !s.is_empty())
}

/// Token-level model of one source file: the lexed stream plus the
/// resolved facts the rule packs consult.
pub struct FileModel<'a> {
    /// The lexed token stream (trivia included).
    pub lexed: Lexed<'a>,
    /// Indices into `lexed.tokens` of the non-trivia (code) tokens.
    pub code: Vec<usize>,
    /// Brace depth *before* each code token (`code`-parallel).
    pub depth: Vec<usize>,
    /// Whether each code token sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// `line_has_comment[line - 1]` — the 1-based line carries a comment.
    pub line_has_comment: Vec<bool>,
    /// Names that denote unordered containers in this file: `HashMap`,
    /// `HashSet`, plus any `use … as` aliases of them.
    pub unordered_types: BTreeSet<String>,
    /// Variables bound (by `let` or parameter) to an unordered container.
    pub unordered_vars: BTreeSet<String>,
}

impl<'a> FileModel<'a> {
    /// Lexes `src` and resolves the file-level facts.
    pub fn build(src: &'a str) -> FileModel<'a> {
        let lexed = lexer::lex(src);
        let mut code = Vec::new();
        let mut depth = Vec::new();
        let mut line_has_comment = vec![false; lexed.line_count()];
        let mut d = 0usize;
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.kind.is_trivia() {
                let first = t.line;
                let extra = lexed.text(t).matches('\n').count();
                for line in first..=first + extra {
                    if let Some(slot) = line_has_comment.get_mut(line - 1) {
                        *slot = true;
                    }
                }
                continue;
            }
            let text = lexed.text(t);
            if text == "}" {
                d = d.saturating_sub(1);
            }
            depth.push(if text == "}" { d + 1 } else { d });
            if text == "{" {
                d += 1;
            }
            code.push(i);
        }
        let mut model = FileModel {
            lexed,
            code,
            depth,
            in_test: Vec::new(),
            line_has_comment,
            unordered_types: BTreeSet::new(),
            unordered_vars: BTreeSet::new(),
        };
        model.in_test = model.resolve_test_regions();
        model.unordered_types = model.resolve_unordered_types();
        model.unordered_vars = model.resolve_unordered_vars();
        model
    }

    /// Number of code tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no code tokens.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The `j`-th code token.
    pub fn tok(&self, j: usize) -> Option<&Token> {
        self.code.get(j).and_then(|&i| self.lexed.tokens.get(i))
    }

    /// The source text of the `j`-th code token (empty when out of range).
    pub fn text(&self, j: usize) -> &'a str {
        self.tok(j).map_or("", |t| self.lexed.text(t))
    }

    /// The kind of the `j`-th code token ([`Kind::Punct`] out of range —
    /// a kind no rule dispatches on for matching identifiers).
    pub fn kind(&self, j: usize) -> Kind {
        self.tok(j).map_or(Kind::Punct, |t| t.kind)
    }

    /// Whether code token `j` equals `text` exactly.
    pub fn is(&self, j: usize, text: &str) -> bool {
        self.text(j) == text
    }

    /// Whether any comment sits on the token's line or the line above
    /// (the bounds-comment convention of the `index-bounds` rule).
    pub fn commented_nearby(&self, j: usize) -> bool {
        let Some(t) = self.tok(j) else { return false };
        let line = t.line;
        let on = |l: usize| l >= 1 && self.line_has_comment.get(l - 1).copied().unwrap_or(false);
        on(line) || on(line.saturating_sub(1))
    }

    /// Marks code tokens covered by `#[cfg(test)]` items (attribute
    /// through the end of the annotated item's braces or semicolon).
    fn resolve_test_regions(&self) -> Vec<bool> {
        let n = self.len();
        let mut skip = vec![false; n];
        let mut j = 0usize;
        while j < n {
            if !(self.is(j, "#") && self.is(j + 1, "[")) {
                j += 1;
                continue;
            }
            // scan the attribute to its matching `]`, collecting content
            let mut k = j + 2;
            let mut brackets = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while k < n && brackets > 0 {
                match self.text(k) {
                    "[" => brackets += 1,
                    "]" => brackets -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    _ => {}
                }
                k += 1;
            }
            if !(saw_cfg && saw_test) {
                j = k;
                continue;
            }
            // the annotated item runs to the first `;` before any brace,
            // or through the matching `}` of its first brace block
            let mut braces = 0usize;
            let mut end = k;
            while end < n {
                match self.text(end) {
                    "{" => braces += 1,
                    "}" => {
                        braces = braces.saturating_sub(1);
                        if braces == 0 {
                            break;
                        }
                    }
                    ";" if braces == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            for slot in skip.iter_mut().take((end + 1).min(n)).skip(j) {
                *slot = true;
            }
            j = end + 1;
        }
        skip
    }

    /// Unordered container type names visible in this file: the std names
    /// plus `use … HashMap as Alias` renames.
    fn resolve_unordered_types(&self) -> BTreeSet<String> {
        let mut names: BTreeSet<String> = ["HashMap", "HashSet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut j = 0usize;
        while j < self.len() {
            if !self.is(j, "use") {
                j += 1;
                continue;
            }
            // within the use statement, `HashMap as X` aliases X
            let mut k = j + 1;
            while k < self.len() && !self.is(k, ";") {
                if matches!(self.text(k), "HashMap" | "HashSet")
                    && self.is(k + 1, "as")
                    && self.kind(k + 2) == Kind::Ident
                {
                    names.insert(self.text(k + 2).to_string());
                }
                k += 1;
            }
            j = k;
        }
        names
    }

    /// Variables bound to unordered containers, resolved from `let`
    /// statements and function parameters whose type or initializer
    /// mentions an unordered type name.
    fn resolve_unordered_vars(&self) -> BTreeSet<String> {
        let mut vars = BTreeSet::new();
        let n = self.len();
        let mut j = 0usize;
        while j < n {
            // `let [mut] name … ;` — statement mentions an unordered type?
            if self.is(j, "let") {
                let mut k = j + 1;
                if self.is(k, "mut") {
                    k += 1;
                }
                if self.kind(k) == Kind::Ident {
                    let name = self.text(k);
                    let stmt_depth = self.depth.get(j).copied().unwrap_or(0);
                    let mut m = k + 1;
                    let mut unordered = false;
                    while m < n {
                        let t = self.text(m);
                        if t == ";" && self.depth.get(m).copied().unwrap_or(0) == stmt_depth {
                            break;
                        }
                        if self.unordered_types.contains(t) {
                            unordered = true;
                        }
                        m += 1;
                    }
                    if unordered {
                        vars.insert(name.to_string());
                    }
                    j = m;
                    continue;
                }
            }
            // `fn name(…)` — parameters typed as unordered containers
            if self.is(j, "fn") && self.kind(j + 1) == Kind::Ident {
                let mut k = j + 2;
                // skip generics to the parameter list
                while k < n && !self.is(k, "(") && !self.is(k, "{") && !self.is(k, ";") {
                    k += 1;
                }
                if self.is(k, "(") {
                    let mut parens = 1usize;
                    let mut m = k + 1;
                    let mut param_name: Option<String> = None;
                    let mut param_unordered = false;
                    while m < n && parens > 0 {
                        match self.text(m) {
                            "(" | "[" => parens += 1,
                            ")" | "]" => parens -= 1,
                            "," if parens == 1 => {
                                if let (Some(p), true) = (param_name.take(), param_unordered) {
                                    vars.insert(p);
                                }
                                param_unordered = false;
                            }
                            ":" if parens == 1 => {
                                // the token before the top-level colon is
                                // the parameter name
                                if m >= 1 && self.kind(m - 1) == Kind::Ident {
                                    param_name = Some(self.text(m - 1).to_string());
                                }
                            }
                            t => {
                                if self.unordered_types.contains(t) {
                                    param_unordered = true;
                                }
                            }
                        }
                        m += 1;
                    }
                    if let (Some(p), true) = (param_name.take(), param_unordered) {
                        vars.insert(p);
                    }
                    j = m;
                    continue;
                }
            }
            j += 1;
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("crates/ft-lp/src/simplex.rs"), Scope::Strict);
        assert_eq!(classify("crates/ft-lint/src/lexer.rs"), Scope::Strict);
        assert_eq!(classify("crates/ft-control/src/advisor.rs"), Scope::Lib);
        assert_eq!(classify("src/cli.rs"), Scope::Lib);
        assert_eq!(classify("src/main.rs"), Scope::Exempt);
        assert_eq!(classify("crates/ft-lp/tests/x.rs"), Scope::Exempt);
        assert_eq!(classify("crates/ft-bench/benches/b.rs"), Scope::Exempt);
        assert_eq!(
            classify("crates/ft-experiments/src/bin/fig7.rs"),
            Scope::Exempt
        );
        assert_eq!(
            classify("crates/ft-lint/fixtures/violating/panics.rs"),
            Scope::Exempt
        );
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/ft-sim/src/lib.rs"), Some("ft-sim"));
        assert_eq!(crate_of("src/cli.rs"), None);
    }

    #[test]
    fn test_regions_cover_mod_tests() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {}\n}\nfn h() {}\n";
        let m = FileModel::build(src);
        let texts: Vec<(&str, bool)> = (0..m.len()).map(|j| (m.text(j), m.in_test[j])).collect();
        let g = texts.iter().find(|(t, _)| *t == "g").unwrap();
        assert!(g.1, "{texts:?}");
        let h = texts.iter().find(|(t, _)| *t == "h").unwrap();
        assert!(!h.1, "{texts:?}");
    }

    #[test]
    fn cfg_test_fn_item() {
        let src = "#[cfg(test)]\nfn only_in_tests() { x.unwrap(); }\nfn real() {}\n";
        let m = FileModel::build(src);
        let unwrap_idx = (0..m.len()).find(|&j| m.is(j, "unwrap")).unwrap();
        assert!(m.in_test[unwrap_idx]);
        let real_idx = (0..m.len()).find(|&j| m.is(j, "real")).unwrap();
        assert!(!m.in_test[real_idx]);
    }

    #[test]
    fn unordered_bindings_resolved() {
        let src = "use std::collections::{HashMap, HashSet as Uniq};\n\
                   fn f(seen: &Uniq<u32>, plain: &[u32]) {\n\
                       let mut m: HashMap<u32, u32> = HashMap::new();\n\
                       let ordered = std::collections::BTreeMap::new();\n\
                       let n = plain.len();\n\
                   }\n";
        let m = FileModel::build(src);
        assert!(m.unordered_vars.contains("m"));
        assert!(m.unordered_vars.contains("seen"));
        assert!(!m.unordered_vars.contains("ordered"));
        assert!(!m.unordered_vars.contains("n"));
        assert!(!m.unordered_vars.contains("plain"));
        assert!(m.unordered_types.contains("Uniq"));
    }

    #[test]
    fn comment_lines_marked() {
        let src = "let a = 1; // c\nlet b = 2;\n/* multi\nline */ let d = 3;\n";
        let m = FileModel::build(src);
        // trailing newline yields a final empty line with no comment
        assert_eq!(m.line_has_comment, vec![true, false, true, true, false]);
    }

    #[test]
    fn depth_tracks_braces() {
        let src = "fn f() { if x { y(); } }\n";
        let m = FileModel::build(src);
        let y = (0..m.len()).find(|&j| m.is(j, "y")).unwrap();
        assert_eq!(m.depth[y], 2);
        let f = (0..m.len()).find(|&j| m.is(j, "f")).unwrap();
        assert_eq!(m.depth[f], 0);
    }
}
