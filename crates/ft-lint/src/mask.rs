//! Source masking: a hand-rolled lexical pass that blanks out comments and
//! string/char literal contents so the rule checks can pattern-match the
//! remaining code without a full parser (no `syn`; builds offline).
//!
//! The mask preserves the byte-for-byte line structure of the input —
//! every violation can therefore be reported with its true line number —
//! and records, per line, whether the line carried a `//` comment and
//! whether it was a `///`/`//!` doc comment (rule 4 needs the latter, the
//! indexing rule the former).

/// A source file after comment/string stripping.
pub struct Masked {
    /// The masked text: comments and literal bodies replaced by spaces,
    /// newlines kept.
    pub text: String,
    /// `has_comment[i]` — line `i` (0-based) contains a comment.
    pub has_comment: Vec<bool>,
    /// `is_doc[i]` — line `i` is a `///` or `//!` doc-comment line (or a
    /// line of a `/** ... */` block).
    pub is_doc: Vec<bool>,
    /// `is_attr[i]` — line `i` (trimmed) starts an attribute `#[...]`.
    pub is_attr: Vec<bool>,
}

/// States of the masking scanner.
enum State {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: usize, doc: bool },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Masks `src`: comments and the interiors of string/char literals become
/// spaces, everything else is copied through.
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let n_lines = src.lines().count().max(1);
    let mut has_comment = vec![false; n_lines];
    let mut is_doc = vec![false; n_lines];
    let mut state = State::Code;
    let mut line = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            out.push(b'\n');
            line += 1;
            if let State::LineComment { .. } = state {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    let doc = i + 2 < bytes.len()
                        && (bytes[i + 2] == b'/' || bytes[i + 2] == b'!')
                        // `////...` dividers are plain comments, not docs
                        && !(bytes[i + 2] == b'/' && i + 3 < bytes.len() && bytes[i + 3] == b'/');
                    mark(&mut has_comment, line);
                    if doc {
                        mark(&mut is_doc, line);
                    }
                    state = State::LineComment { doc };
                    out.push(b' ');
                    i += 1;
                } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    let doc = i + 2 < bytes.len() && (bytes[i + 2] == b'*' || bytes[i + 2] == b'!');
                    mark(&mut has_comment, line);
                    if doc {
                        mark(&mut is_doc, line);
                    }
                    state = State::BlockComment { depth: 1, doc };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r' && !prev_is_ident(&out) && raw_str_hashes(&bytes[i..]).is_some()
                {
                    // raw string literal r"..." / r#"..."#
                    let hashes = raw_str_hashes(&bytes[i..]).unwrap_or(0);
                    state = State::RawStr { hashes };
                    out.resize(out.len() + 2 + hashes, b' ');
                    i += 2 + hashes;
                } else if b == b'b'
                    && !prev_is_ident(&out)
                    && i + 1 < bytes.len()
                    && bytes[i + 1] == b'"'
                {
                    // byte string b"..."
                    out.extend_from_slice(b" \"");
                    state = State::Str;
                    i += 2;
                } else if b == b'\'' && char_literal_len(&bytes[i..]).is_some() {
                    state = State::Char;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                mark(&mut has_comment, line);
                if doc {
                    mark(&mut is_doc, line);
                }
                out.push(b' ');
                i += 1;
            }
            State::BlockComment { depth, doc } => {
                mark(&mut has_comment, line);
                if doc {
                    mark(&mut is_doc, line);
                }
                if b == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment {
                            depth: depth - 1,
                            doc,
                        };
                    }
                } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    // an escaped newline keeps the string open; restore the
                    // line structure the two-space push just broke
                    if bytes[i - 1] == b'\n' {
                        let len = out.len();
                        out[len - 1] = b'\n';
                        line += 1;
                    }
                } else if b == b'"' {
                    out.push(b'"');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if b == b'"' && closes_raw(&bytes[i..], hashes) {
                    out.resize(out.len() + 1 + hashes, b' ');
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    out.push(b'\'');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    let text = String::from_utf8_lossy(&out).into_owned();
    let is_attr = text
        .lines()
        .map(|l| l.trim_start().starts_with("#["))
        .collect();
    Masked {
        text,
        has_comment,
        is_doc,
        is_attr,
    }
}

/// Grows-and-sets helper for the per-line flag vectors.
fn mark(v: &mut [bool], line: usize) {
    if let Some(slot) = v.get_mut(line) {
        *slot = true;
    }
}

/// Whether the last emitted byte continues an identifier (so `r` in `for`
/// or `attr` is not the start of a raw string).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// If `bytes` starts a raw string literal (`r"`, `r#"`, `r##"`, …),
/// returns the number of `#`s.
fn raw_str_hashes(bytes: &[u8]) -> Option<usize> {
    if bytes.first() != Some(&b'r') {
        return None;
    }
    let mut h = 0;
    while bytes.get(1 + h) == Some(&b'#') {
        h += 1;
    }
    (bytes.get(1 + h) == Some(&b'"')).then_some(h)
}

/// Whether a `"` at the start of `bytes` is followed by enough `#`s to
/// close a raw string opened with `hashes` hashes.
fn closes_raw(bytes: &[u8], hashes: usize) -> bool {
    (1..=hashes).all(|j| bytes.get(j) == Some(&b'#'))
}

/// Distinguishes a char literal from a lifetime: returns the literal's
/// length if `bytes` (starting at `'`) opens a char literal.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    // 'x' | '\n' | '\u{...}' — a lifetime ('a, 'static) has no closing '
    // within a couple of identifier chars
    if bytes.len() < 3 {
        return None;
    }
    if bytes[1] == b'\\' {
        // escaped: scan to the closing quote (bounded; '\u{10FFFF}' is 10)
        let limit = bytes.len().min(12);
        return (2..limit).find(|&j| bytes[j] == b'\'').map(|j| j + 1);
    }
    // multi-byte UTF-8 scalar or single char followed by '
    let limit = bytes.len().min(6);
    let close = (2..limit).find(|&j| bytes[j] == b'\'')?;
    // 'a' is a char, 'ab is a lifetime-ish token (invalid char literal)
    let inner = &bytes[1..close];
    let ident_like = inner
        .iter()
        .all(|&b| b.is_ascii_alphanumeric() || b == b'_');
    if ident_like && inner.len() > 1 {
        return None;
    }
    // a lone identifier char could still be a lifetime ('a as in <'a>);
    // treat `'x'` as a literal only if the char after the opening quote is
    // not immediately a generic/lifetime position — heuristic: lifetimes
    // are always followed by [,>& )] or an identifier, never by `'`
    Some(close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let m = mask("let x = 1; // unwrap() here\nlet y = 2;\n");
        assert!(!m.text.contains("unwrap"));
        assert!(m.has_comment[0]);
        assert!(!m.has_comment[1]);
        assert!(!m.is_doc[0]);
    }

    #[test]
    fn strips_strings_keeps_lines() {
        let src = "let s = \"panic! at the\\n disco\";\nlet t = 3;\n";
        let m = mask(src);
        assert!(!m.text.contains("panic"));
        assert_eq!(m.text.lines().count(), src.lines().count());
    }

    #[test]
    fn doc_comments_flagged() {
        let m = mask("/// docs\npub fn f() {}\n");
        assert!(m.is_doc[0]);
        assert!(!m.is_doc[1]);
    }

    #[test]
    fn raw_strings_masked() {
        let m = mask("let s = r#\"x.unwrap()\"#;\n");
        assert!(!m.text.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* a /* b */ panic! */ let x = 1;\n");
        assert!(!m.text.contains("panic"));
        assert!(m.text.contains("let x = 1;"));
    }

    #[test]
    fn lifetimes_not_strings() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.text.contains("fn f<'a>"));
    }

    #[test]
    fn char_literal_masked() {
        let m = mask("let c = 'x'; let d = '\\n';\n");
        assert!(m.text.contains("let c ="));
        assert!(!m.text.contains('x'));
    }

    #[test]
    fn attr_lines_flagged() {
        let m = mask("#[inline]\nfn g() {}\n");
        assert!(m.is_attr[0]);
        assert!(!m.is_attr[1]);
    }
}
