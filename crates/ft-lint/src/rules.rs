//! The rule packs, applied to the token stream of [`crate::lexer`] via
//! the resolved [`crate::scope::FileModel`].
//!
//! Three packs:
//!
//! * **hygiene** — the v1 rules, now scope-aware: `panic`,
//!   `index-bounds`, `float-eq`, `truncating-cast`, `missing-doc`.
//! * **determinism** — constructs that make output depend on hash seeds,
//!   wall clocks, or thread schedules: `unordered-iter`, `wallclock`,
//!   `thread-dependent`. These guard the repo's core invariant:
//!   bit-identical results across `FT_THREADS` (DESIGN.md §10).
//! * **concurrency** — synchronization hazards: `relaxed-sync`,
//!   `lock-across-blocking`, `static-mut`.
//!
//! Every rule has a stable id (used by `lint-allow.toml` and the JSON/
//! SARIF reports) and an entry in [`RULES`]; the fixture corpus under
//! `tests/fixtures/` holds one positive and one negative case per id.

use crate::lexer::Kind;
use crate::scope::{
    classify, crate_of, FileModel, Scope, DETERMINISTIC_CRATES, THREAD_SOURCE_FILE,
    WALLCLOCK_CRATES,
};

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// Stable rule id (used by `lint-allow.toml`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The offending source line, trimmed (allowlist `contains` matches it).
    pub excerpt: String,
}

/// Catalog entry describing one rule (drives the SARIF rule table and the
/// DESIGN.md catalog).
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// Which pack the rule ships in.
    pub pack: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// The full rule catalog. Every id here has a positive and a negative
/// fixture under `tests/fixtures/` (enforced by the golden test).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "panic",
        pack: "hygiene",
        summary: "no panic!/unreachable!/.unwrap()/.expect() in strict library code",
    },
    RuleInfo {
        id: "index-bounds",
        pack: "hygiene",
        summary: "arithmetic index expressions need a bounds comment",
    },
    RuleInfo {
        id: "float-eq",
        pack: "hygiene",
        summary: "no ==/!= against float literals",
    },
    RuleInfo {
        id: "truncating-cast",
        pack: "hygiene",
        summary: "no narrowing `as` casts on indices; use try_into or id32",
    },
    RuleInfo {
        id: "missing-doc",
        pack: "hygiene",
        summary: "every pub fn in strict library code carries a doc comment",
    },
    RuleInfo {
        id: "unordered-iter",
        pack: "determinism",
        summary: "no iteration over HashMap/HashSet in deterministic crates",
    },
    RuleInfo {
        id: "wallclock",
        pack: "determinism",
        summary: "no Instant::now/SystemTime outside ft-obs/ft-bench",
    },
    RuleInfo {
        id: "thread-dependent",
        pack: "determinism",
        summary: "no thread-count/thread-id dependence outside ft_graph::par",
    },
    RuleInfo {
        id: "relaxed-sync",
        pack: "concurrency",
        summary: "no Ordering::Relaxed loads/stores as synchronization outside ft-obs",
    },
    RuleInfo {
        id: "lock-across-blocking",
        pack: "concurrency",
        summary: "no lock guard held across send/recv/join/sleep",
    },
    RuleInfo {
        id: "static-mut",
        pack: "concurrency",
        summary: "no static mut; use atomics or locks",
    },
];

/// Looks up a rule's catalog entry.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Narrowing integer target types of the `truncating-cast` rule.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Iteration methods that observe a container's (unordered) order.
const ORDER_OBSERVING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Atomic methods where `Ordering::Relaxed` implies the atomic is being
/// used for synchronization rather than counting; `fetch_add`/`fetch_sub`
/// counters are exempt (the ft-obs metrics idiom).
const SYNC_ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Blocking calls a lock guard must not be held across.
const BLOCKING_METHODS: &[&str] = &["send", "recv", "join"];

/// Checks one file, returning its violations (before allowlisting).
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let scope = classify(path);
    if scope == Scope::Exempt {
        return Vec::new();
    }
    let m = FileModel::build(src);
    let krate = crate_of(path);
    let mut ctx = Ctx {
        path,
        m: &m,
        out: Vec::new(),
    };
    if scope == Scope::Strict {
        ctx.panic_rule();
        ctx.index_bounds();
        ctx.truncating_cast();
        ctx.missing_doc();
    }
    ctx.float_eq();
    if krate.is_some_and(|k| DETERMINISTIC_CRATES.contains(&k)) {
        ctx.unordered_iter();
    }
    if !krate.is_some_and(|k| WALLCLOCK_CRATES.contains(&k)) {
        ctx.wallclock();
    }
    if path != THREAD_SOURCE_FILE {
        ctx.thread_dependent();
    }
    if krate != Some("ft-obs") {
        ctx.relaxed_sync();
    }
    ctx.lock_across_blocking();
    ctx.static_mut();
    let mut out = ctx.out;
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Shared state of the per-file rule passes.
struct Ctx<'a, 'b> {
    path: &'a str,
    m: &'a FileModel<'b>,
    out: Vec<Violation>,
}

impl Ctx<'_, '_> {
    /// Records a violation anchored at code token `j`.
    fn report(&mut self, j: usize, rule: &'static str, message: String) {
        let (line, col) = self.m.tok(j).map_or((1, 1), |t| (t.line, t.col));
        self.out.push(Violation {
            path: self.path.to_string(),
            line,
            col,
            rule,
            message,
            excerpt: self.m.lexed.line_text(line).to_string(),
        });
    }

    /// Whether token `j` is inside a `#[cfg(test)]` region.
    fn skipped(&self, j: usize) -> bool {
        self.m.in_test.get(j).copied().unwrap_or(false)
    }

    /// `panic` — panicking constructs in strict library code.
    fn panic_rule(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) {
                continue;
            }
            let t = m.text(j);
            if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented") && m.is(j + 1, "!") {
                self.report(
                    j,
                    "panic",
                    format!("`{t}!` in library code; return a Result instead"),
                );
            }
            if m.is(j, ".") && matches!(m.text(j + 1), "unwrap" | "expect") && m.is(j + 2, "(") {
                let name = m.text(j + 1);
                self.report(
                    j + 1,
                    "panic",
                    format!("`.{name}()` in library code; return a Result instead"),
                );
            }
        }
    }

    /// `index-bounds` — `v[i + 1]`-style arithmetic indexing without a
    /// bounds comment on the same or previous line.
    fn index_bounds(&mut self) {
        let m = self.m;
        for j in 1..m.len() {
            if self.skipped(j) || !m.is(j, "[") {
                continue;
            }
            // an index expression follows a value token; `[` after `(`,
            // `=`, `,`, … opens a slice/array literal instead
            let prev = m.text(j - 1);
            let prev_is_value =
                matches!(m.kind(j - 1), Kind::Ident) && prev != "mut" || prev == "]" || prev == ")";
            if !prev_is_value {
                continue;
            }
            let mut depth = 1usize;
            let mut k = j + 1;
            let mut arithmetic: Option<usize> = None;
            while k < m.len() && depth > 0 {
                match m.text(k) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "+" | "*" | "%" | "-" => {
                        // only binary uses count: `v[i + 1]` yes,
                        // `v[*cursor]` (deref) and `v[-x]` (negation) no
                        let binary = matches!(m.kind(k - 1), Kind::Ident | Kind::Int | Kind::Float)
                            || m.is(k - 1, ")")
                            || m.is(k - 1, "]");
                        if binary {
                            arithmetic = arithmetic.or(Some(k));
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(op) = arithmetic {
                if !m.commented_nearby(j) {
                    let expr: String = (j + 1..k.saturating_sub(1))
                        .map(|i| m.text(i))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = op;
                    self.report(
                        j,
                        "index-bounds",
                        format!(
                            "arithmetic index `[{expr}]` without a bounds comment on this or the previous line"
                        ),
                    );
                }
            }
        }
    }

    /// `float-eq` — `==`/`!=` where either operand is a float literal.
    fn float_eq(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || !(m.is(j, "==") || m.is(j, "!=")) {
                continue;
            }
            let left = j.checked_sub(1).map_or(Kind::Punct, |p| m.kind(p));
            let right = m.kind(j + 1);
            // a unary minus before the literal still compares a float
            let right_neg = m.is(j + 1, "-") && m.kind(j + 2) == Kind::Float;
            if left == Kind::Float || right == Kind::Float || right_neg {
                self.report(
                    j,
                    "float-eq",
                    "`==`/`!=` against a float literal; compare with an epsilon or integers"
                        .to_string(),
                );
            }
        }
    }

    /// `truncating-cast` — `as u32`-style narrowing casts.
    fn truncating_cast(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || !m.is(j, "as") {
                continue;
            }
            let ty = m.text(j + 1);
            if NARROW_CASTS.contains(&ty) {
                self.report(
                    j,
                    "truncating-cast",
                    format!(
                        "truncating `as {ty}` cast; use try_into() or a checked helper (ft_graph::id32)"
                    ),
                );
            }
        }
    }

    /// `missing-doc` — `pub fn` without a doc comment.
    fn missing_doc(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || !m.is(j, "pub") {
                continue;
            }
            // pub(crate)/pub(super) are internal API, no doc required
            if m.is(j + 1, "(") {
                continue;
            }
            let mut k = j + 1;
            while matches!(m.text(k), "const" | "unsafe" | "async" | "extern") {
                k += 1;
            }
            if !m.is(k, "fn") || m.kind(k + 1) != Kind::Ident {
                continue;
            }
            let name = m.text(k + 1);
            if !self.documented(j) {
                self.report(
                    k + 1,
                    "missing-doc",
                    format!("public function `{name}` has no doc comment"),
                );
            }
        }
    }

    /// Whether the item whose first code token is `j` has a doc comment,
    /// walking back over attributes in the *full* token stream.
    fn documented(&self, j: usize) -> bool {
        let m = self.m;
        let Some(&start) = m.code.get(j) else {
            return false;
        };
        let mut i = start;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            let Some(t) = m.lexed.tokens.get(i) else {
                return false;
            };
            match t.kind {
                Kind::LineComment { doc } | Kind::BlockComment { doc } => {
                    if doc {
                        return true;
                    }
                    // plain comments between doc and item are fine; keep
                    // walking
                }
                _ => {
                    // walk back over one attribute `#[…]`: from its `]`
                    // to the `#`, then continue above it
                    if m.lexed.text(t) == "]" {
                        let mut brackets = 1usize;
                        while i > 0 && brackets > 0 {
                            i -= 1;
                            match m.lexed.tokens.get(i).map(|t| m.lexed.text(t)) {
                                Some("]") => brackets += 1,
                                Some("[") => brackets -= 1,
                                _ => {}
                            }
                        }
                        // the `#` before the `[`
                        i = i.saturating_sub(1);
                        // i now sits on `#` (or as far back as we got);
                        // the loop continues above the attribute
                        continue;
                    }
                    return false;
                }
            }
        }
    }

    /// `unordered-iter` — iteration over a HashMap/HashSet in the
    /// deterministic crates.
    fn unordered_iter(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || m.kind(j) != Kind::Ident {
                continue;
            }
            let name = m.text(j);
            if !m.unordered_vars.contains(name) {
                continue;
            }
            // v.iter() / v.keys() / … — order-observing method call
            if m.is(j + 1, ".") && ORDER_OBSERVING.contains(&m.text(j + 2)) && m.is(j + 3, "(") {
                let method = m.text(j + 2);
                self.report(
                    j,
                    "unordered-iter",
                    format!(
                        "`{name}.{method}()` iterates an unordered container in a deterministic crate; \
                         use BTreeMap/BTreeSet or sort the keys first"
                    ),
                );
                continue;
            }
            // for x in [&[mut]] v — direct loop over the container
            let mut p = j;
            while p > 0 && (m.is(p - 1, "&") || m.is(p - 1, "mut")) {
                p -= 1;
            }
            if p > 0 && m.is(p - 1, "in") {
                self.report(
                    j,
                    "unordered-iter",
                    format!(
                        "`for … in {name}` iterates an unordered container in a deterministic crate; \
                         use BTreeMap/BTreeSet or sort the keys first"
                    ),
                );
            }
        }
    }

    /// `wallclock` — wall-clock reads outside the observability and bench
    /// crates.
    fn wallclock(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) {
                continue;
            }
            if m.is(j, "Instant") && m.is(j + 1, "::") && m.is(j + 2, "now") {
                self.report(
                    j,
                    "wallclock",
                    "`Instant::now()` outside ft-obs/ft-bench; deterministic code must not read wall clocks"
                        .to_string(),
                );
            }
            if m.is(j, "SystemTime") {
                self.report(
                    j,
                    "wallclock",
                    "`SystemTime` outside ft-obs/ft-bench; deterministic code must not read wall clocks"
                        .to_string(),
                );
            }
        }
    }

    /// `thread-dependent` — thread-count or thread-identity dependence
    /// outside the worker pool.
    fn thread_dependent(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) {
                continue;
            }
            if m.is(j, "available_parallelism") {
                self.report(
                    j,
                    "thread-dependent",
                    "`available_parallelism` outside ft_graph::par; take the worker count from the pool"
                        .to_string(),
                );
            }
            if m.kind(j) == Kind::Str && m.text(j).contains("FT_THREADS") {
                self.report(
                    j,
                    "thread-dependent",
                    "`FT_THREADS` read outside ft_graph::par; take the worker count from the pool"
                        .to_string(),
                );
            }
            if m.is(j, "current")
                && m.is(j + 1, "(")
                && m.is(j + 2, ")")
                && m.is(j + 3, ".")
                && m.is(j + 4, "id")
            {
                self.report(
                    j,
                    "thread-dependent",
                    "thread-id inspection outside ft_graph::par makes behaviour schedule-dependent"
                        .to_string(),
                );
            }
        }
    }

    /// `relaxed-sync` — `Ordering::Relaxed` on load/store/swap/CAS used as
    /// a synchronization flag.
    fn relaxed_sync(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || !SYNC_ATOMIC_METHODS.contains(&m.text(j)) || !m.is(j + 1, "(") {
                continue;
            }
            // only method-call positions: `.load(…)`, not a free fn
            if j == 0 || !m.is(j - 1, ".") {
                continue;
            }
            let mut parens = 1usize;
            let mut k = j + 2;
            while k < m.len() && parens > 0 {
                match m.text(k) {
                    "(" => parens += 1,
                    ")" => parens -= 1,
                    "Relaxed" => {
                        let method = m.text(j);
                        self.report(
                            j,
                            "relaxed-sync",
                            format!(
                                "`{method}` with `Ordering::Relaxed` used for synchronization; \
                                 use Acquire/Release/SeqCst (Relaxed is for ft-obs counters)"
                            ),
                        );
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }

    /// `lock-across-blocking` — a `let`-bound lock guard alive across a
    /// blocking call (send/recv/join/sleep), detected per token window
    /// from the binding to the end of its block or an explicit `drop`.
    fn lock_across_blocking(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) || !m.is(j, "let") {
                continue;
            }
            let mut k = j + 1;
            if m.is(k, "mut") {
                k += 1;
            }
            if m.kind(k) != Kind::Ident || !m.is(k + 1, "=") {
                continue;
            }
            let guard = m.text(k);
            // `let v = *m.lock();` copies the value out — no guard lives on
            if m.is(k + 2, "*") {
                continue;
            }
            // find the end of the statement and check the initializer
            // ends in `.lock()` / `.read()` / `.write()`
            let stmt_depth = m.depth.get(j).copied().unwrap_or(0);
            let mut e = k + 2;
            while e < m.len() {
                if m.is(e, ";") && m.depth.get(e).copied().unwrap_or(0) == stmt_depth {
                    break;
                }
                e += 1;
            }
            let is_guard = e >= 4
                && m.is(e - 1, ")")
                && m.is(e - 2, "(")
                && matches!(m.text(e - 3), "lock" | "read" | "write")
                && m.is(e - 4, ".");
            if !is_guard {
                continue;
            }
            // window: from the statement end to the end of the enclosing
            // block or an explicit drop(guard)
            let mut w = e + 1;
            while w < m.len() {
                let d = m.depth.get(w).copied().unwrap_or(0);
                if m.is(w, "}") && d <= stmt_depth {
                    break;
                }
                if m.is(w, "drop") && m.is(w + 1, "(") && m.is(w + 2, guard) && m.is(w + 3, ")") {
                    break;
                }
                let blocking =
                    (m.is(w, ".") && BLOCKING_METHODS.contains(&m.text(w + 1)) && m.is(w + 2, "("))
                        .then(|| m.text(w + 1))
                        .or_else(|| (m.is(w, "sleep") && m.is(w + 1, "(")).then_some("sleep"));
                if let Some(call) = blocking {
                    self.report(
                        w,
                        "lock-across-blocking",
                        format!(
                            "guard `{guard}` (bound at line {}) is still held across `{call}`; \
                             drop it first or narrow the critical section",
                            m.tok(j).map_or(0, |t| t.line)
                        ),
                    );
                    break;
                }
                w += 1;
            }
        }
    }

    /// `static-mut` — mutable statics.
    fn static_mut(&mut self) {
        let m = self.m;
        for j in 0..m.len() {
            if self.skipped(j) {
                continue;
            }
            if m.is(j, "static") && m.is(j + 1, "mut") {
                self.report(
                    j,
                    "static-mut",
                    "`static mut` is unsynchronized shared state; use an atomic or a lock"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_strict_lib_flagged() {
        let v = rules_of("crates/ft-lp/src/x.rs", "fn f() { let _ = a.unwrap(); }\n");
        assert!(v.contains(&"panic"), "{v:?}");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let v = rules_of(
            "crates/ft-lp/src/x.rs",
            "fn f() { let _ = a.unwrap_or(0); }\n",
        );
        assert!(!v.contains(&"panic"), "{v:?}");
    }

    #[test]
    fn test_module_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { a.unwrap(); }\n}\n";
        assert!(rules_of("crates/ft-lp/src/x.rs", src).is_empty());
    }

    #[test]
    fn string_contents_ignored() {
        let v = rules_of(
            "crates/ft-lp/src/x.rs",
            "fn f() { let s = \"don't .unwrap() me\"; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_flagged_in_any_lib() {
        let v = rules_of(
            "crates/ft-control/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n",
        );
        assert_eq!(v, vec!["float-eq"]);
    }

    #[test]
    fn integer_eq_not_flagged() {
        assert!(rules_of(
            "crates/ft-control/src/x.rs",
            "fn f(x: u32) -> bool { x == 0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn range_pattern_not_float_eq() {
        let v = rules_of(
            "crates/ft-control/src/x.rs",
            "fn f(x: u32) -> bool { matches!(x, 0..=4) }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn truncating_cast_flagged_widening_ok() {
        assert!(rules_of(
            "crates/ft-graph/src/x.rs",
            "fn f(i: usize) -> u32 { i as u32 }\n"
        )
        .contains(&"truncating-cast"));
        assert!(rules_of(
            "crates/ft-graph/src/x.rs",
            "fn f(i: u32) -> f64 { i as f64 }\n"
        )
        .is_empty());
    }

    #[test]
    fn arithmetic_index_needs_comment() {
        let bad = "fn f(v: &[u32], i: usize) -> u32 { v[i + 1] }\n";
        let good = "fn f(v: &[u32], i: usize) -> u32 {\n    // bounds: i + 1 < v.len() by caller contract\n    v[i + 1]\n}\n";
        assert!(rules_of("crates/ft-graph/src/x.rs", bad).contains(&"index-bounds"));
        assert!(rules_of("crates/ft-graph/src/x.rs", good).is_empty());
    }

    #[test]
    fn plain_index_and_array_literal_ok() {
        assert!(rules_of(
            "crates/ft-graph/src/x.rs",
            "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n"
        )
        .is_empty());
        assert!(rules_of(
            "crates/ft-graph/src/x.rs",
            "fn f() -> [u32; 2] { [1 + 1, 2] }\n"
        )
        .is_empty());
    }

    #[test]
    fn pub_fn_doc_rules() {
        assert!(rules_of("crates/ft-lp/src/x.rs", "pub fn naked() {}\n").contains(&"missing-doc"));
        assert!(rules_of(
            "crates/ft-lp/src/x.rs",
            "/// Documented.\npub fn clothed() {}\n"
        )
        .is_empty());
        assert!(rules_of(
            "crates/ft-lp/src/x.rs",
            "/// Documented.\n#[inline]\npub fn with_attr() {}\n"
        )
        .is_empty());
        assert!(rules_of("crates/ft-lp/src/x.rs", "pub(crate) fn internal() {}\n").is_empty());
    }

    #[test]
    fn unordered_iteration_flagged_in_det_crates_only() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { let _ = (k, v); }\n}\n";
        assert!(rules_of("crates/ft-sim/src/x.rs", src).contains(&"unordered-iter"));
        assert!(!rules_of("crates/ft-control/src/x.rs", src).contains(&"unordered-iter"));
    }

    #[test]
    fn unordered_lookup_not_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }\n";
        assert!(!rules_of("crates/ft-mcf/src/x.rs", src).contains(&"unordered-iter"));
    }

    #[test]
    fn wallclock_scoping() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert!(rules_of("crates/ft-mcf/src/x.rs", src).contains(&"wallclock"));
        assert!(!rules_of("crates/ft-obs/src/x.rs", src).contains(&"wallclock"));
        assert!(!rules_of("crates/ft-bench/src/x.rs", src).contains(&"wallclock"));
    }

    #[test]
    fn thread_dependence_scoping() {
        let src = "fn n() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        assert!(rules_of("crates/ft-mcf/src/x.rs", src).contains(&"thread-dependent"));
        assert!(!rules_of("crates/ft-graph/src/par.rs", src).contains(&"thread-dependent"));
        let env = "fn n() { let _ = std::env::var(\"FT_THREADS\"); }\n";
        assert!(rules_of("crates/ft-serve/src/x.rs", env).contains(&"thread-dependent"));
    }

    #[test]
    fn relaxed_sync_scoping() {
        let flag = "fn f(b: &std::sync::atomic::AtomicBool) -> bool { b.load(std::sync::atomic::Ordering::Relaxed) }\n";
        assert!(rules_of("crates/ft-serve/src/x.rs", flag).contains(&"relaxed-sync"));
        assert!(!rules_of("crates/ft-obs/src/x.rs", flag).contains(&"relaxed-sync"));
        let counter = "fn f(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n";
        assert!(!rules_of("crates/ft-serve/src/x.rs", counter).contains(&"relaxed-sync"));
    }

    #[test]
    fn lock_across_blocking_detected() {
        let bad = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let g = m.lock();\n    tx.send(*g);\n}\n";
        assert!(rules_of("crates/ft-serve/src/x.rs", bad).contains(&"lock-across-blocking"));
        let dropped = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let g = m.lock();\n    let v = *g;\n    drop(g);\n    tx.send(v);\n}\n";
        assert!(!rules_of("crates/ft-serve/src/x.rs", dropped).contains(&"lock-across-blocking"));
        let temporary = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let v = *m.lock();\n    tx.send(v);\n}\n";
        assert!(!rules_of("crates/ft-serve/src/x.rs", temporary).contains(&"lock-across-blocking"));
    }

    #[test]
    fn static_mut_flagged() {
        assert!(
            rules_of("crates/ft-core/src/x.rs", "static mut X: u32 = 0;\n").contains(&"static-mut")
        );
        assert!(rules_of(
            "crates/ft-core/src/x.rs",
            "static X: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);\n"
        )
        .is_empty());
    }

    #[test]
    fn catalog_is_complete() {
        for v in ["panic", "unordered-iter", "lock-across-blocking"] {
            assert!(rule_info(v).is_some());
        }
        assert_eq!(RULES.len(), 11);
    }
}
