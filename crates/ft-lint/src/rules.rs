//! The project rule checks, applied to masked source (see [`crate::mask`]).
//!
//! Scope model: a file is classified by path into
//!
//! * **Strict** — library code of the numeric/core crates (`ft-graph`,
//!   `ft-lp`, `ft-mcf`, `ft-core`, `ft-metrics`, `ft-serve`, `ft-obs`):
//!   all five rules apply.
//! * **Lib** — any other library code under `crates/*/src` or `src/`:
//!   only the float-equality rule applies.
//! * **Exempt** — tests, benches, examples, binaries, fixtures: no rules.
//!
//! `#[cfg(test)]` modules inside strict/lib files are skipped by brace
//! matching, so unit tests may use `unwrap()` freely.

use crate::mask::{mask, Masked};

/// How strictly a file is checked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// All rules.
    Strict,
    /// Float-equality only.
    Lib,
    /// No rules.
    Exempt,
}

/// Crates whose library code is held to the full rule set.
pub const STRICT_CRATES: &[&str] = &[
    "ft-graph",
    "ft-lp",
    "ft-mcf",
    "ft-core",
    "ft-metrics",
    "ft-serve",
    "ft-obs",
];

/// Path components that exempt a file wholesale.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples", "bin", "fixtures", "target"];

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (used by `lint-allow.toml`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The offending source line, trimmed (allowlist `contains` matches it).
    pub excerpt: String,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(path: &str) -> Scope {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.iter().any(|p| EXEMPT_DIRS.contains(p)) {
        return Scope::Exempt;
    }
    if !path.ends_with(".rs") {
        return Scope::Exempt;
    }
    if parts.first() == Some(&"crates") && parts.get(2) == Some(&"src") {
        let krate = parts.get(1).copied().unwrap_or("");
        if STRICT_CRATES.contains(&krate) {
            return Scope::Strict;
        }
        // a crate's `src/main.rs` is binary code, exempt like other bins
        if parts.last() == Some(&"main.rs") {
            return Scope::Exempt;
        }
        return Scope::Lib;
    }
    if parts.first() == Some(&"src") {
        if parts.last() == Some(&"main.rs") {
            return Scope::Exempt;
        }
        return Scope::Lib;
    }
    Scope::Exempt
}

/// Checks one file, returning its violations (before allowlisting).
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let scope = classify(path);
    if scope == Scope::Exempt {
        return Vec::new();
    }
    let m = mask(src);
    let skip = test_region_lines(&m);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in m.text.lines().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let report = |out: &mut Vec<Violation>, rule: &'static str, message: String| {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule,
                message,
                excerpt: raw_lines.get(idx).map_or("", |l| l.trim()).to_string(),
            });
        };
        if scope == Scope::Strict {
            for pat in ["panic!", "unreachable!", ".unwrap()", ".expect("] {
                if find_token(line, pat) {
                    report(
                        &mut out,
                        "panic",
                        format!("`{pat}` in library code; return a Result instead"),
                    );
                }
            }
            if let Some(expr) = arithmetic_index(line) {
                let commented = m.has_comment.get(idx).copied().unwrap_or(false)
                    || (idx > 0 && m.has_comment.get(idx - 1).copied().unwrap_or(false));
                if !commented {
                    report(
                        &mut out,
                        "index-bounds",
                        format!(
                            "arithmetic index `[{expr}]` without a bounds comment on this or the previous line"
                        ),
                    );
                }
            }
            if let Some(ty) = truncating_cast(line) {
                report(
                    &mut out,
                    "truncating-cast",
                    format!("truncating `as {ty}` cast; use try_into() or a checked helper (ft_graph::id32)"),
                );
            }
        }
        if float_eq(line) {
            report(
                &mut out,
                "float-eq",
                "`==`/`!=` against a float literal; compare with an epsilon or integers"
                    .to_string(),
            );
        }
    }
    if scope == Scope::Strict {
        out.extend(missing_docs(path, &m, &skip));
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// Lines covered by `#[cfg(test)]` items (usually the `mod tests` block),
/// found by brace matching on the masked text.
fn test_region_lines(m: &Masked) -> Vec<bool> {
    let lines: Vec<&str> = m.text.lines().collect();
    let mut skip = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // skip from the attribute through the end of the item's braces
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                skip[j] = true;
                for c in lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                if opened && depth == 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    skip
}

/// Token-boundary search: `pat` must not be preceded/followed by an
/// identifier character (so `unwrap_or()` does not match `.unwrap()`).
fn find_token(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        // method patterns (`.unwrap()`) are naturally preceded by an
        // identifier; bare macros (`panic!`) must not be a name suffix
        let before_ok = pat.starts_with('.') || at == 0 || !is_ident(line.as_bytes()[at - 1]);
        let after = at + pat.len();
        let after_ok = after >= line.len() || !is_ident(line.as_bytes()[after]);
        // for patterns ending in `(` / `!` the following char is free-form
        if before_ok && (pat.ends_with('(') || pat.ends_with('!') || pat.ends_with(')') || after_ok)
        {
            return true;
        }
        from = at + 1;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds an index expression `ident[ ... ]` whose interior contains
/// arithmetic (`+ - * %`) — the off-by-one habitat. Plain `v[i]` passes.
fn arithmetic_index(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 || !is_ident(bytes[i - 1]) {
            continue;
        }
        // find the matching close bracket on this line
        let mut depth = 1;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue; // spans lines; out of lexical reach
        }
        let inner = &line[i + 1..j - 1];
        let has_arith = inner.bytes().enumerate().any(|(k, c)| {
            matches!(c, b'+' | b'*' | b'%')
                || (c == b'-'
                    // `-` as arithmetic, not `->` or a negative-literal range
                    && inner.as_bytes().get(k + 1) != Some(&b'>')
                    && k > 0)
        });
        if has_arith {
            return Some(inner.trim().to_string());
        }
    }
    None
}

/// Detects `as u8|u16|u32|i8|i16|i32` — casts that can silently truncate a
/// node index. Widening (`as u64`/`as f64`) and `as usize` are allowed.
fn truncating_cast(line: &str) -> Option<&'static str> {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(" as ") {
        let at = from + pos + 4;
        let rest = &line[at..];
        for ty in NARROW {
            if rest.starts_with(ty) {
                let after = at + ty.len();
                if after >= line.len() || !is_ident(bytes[after]) {
                    return Some(ty);
                }
            }
        }
        from = at;
    }
    None
}

/// Detects `==` / `!=` with a float literal on either side.
fn float_eq(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = matches!((bytes[i], bytes[i + 1]), (b'=', b'=') | (b'!', b'='));
        // skip <= >= === (pattern ..=) and != inside generics is impossible
        if op
            && (i == 0 || !matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!'))
            && bytes.get(i + 2) != Some(&b'=')
        {
            let left = token_left(line, i);
            let right = token_right(line, i + 2);
            if is_float_literal(left) || is_float_literal(right) {
                return true;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    false
}

/// The token immediately left of byte `pos` (identifier/number chars).
fn token_left(line: &str, pos: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (is_ident(bytes[start - 1]) || bytes[start - 1] == b'.') {
        start -= 1;
    }
    &line[start..end]
}

/// The token immediately right of byte `pos`.
fn token_right(line: &str, pos: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = pos;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && (is_ident(bytes[end]) || bytes[end] == b'.') {
        end += 1;
    }
    &line[start..end]
}

/// Whether `tok` is a floating-point literal (`0.0`, `1.`, `1e-9`, `2f64`).
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = t.bytes().any(|b| b == b'e' || b == b'E');
    let valid = t
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'_' | b'+' | b'-'));
    valid && (has_dot || has_exp || tok.ends_with("f64") || tok.ends_with("f32"))
}

/// Rule 4: every `pub fn` in strict library code carries a doc comment.
fn missing_docs(path: &str, m: &Masked, skip: &[bool]) -> Vec<Violation> {
    let lines: Vec<&str> = m.text.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = pub_fn_name(line) else {
            continue;
        };
        // walk upward over attributes and blank lines to the nearest doc
        // (doc lines are blanked in the masked text, so consult is_doc
        // before the emptiness test)
        let mut j = idx;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            if m.is_doc.get(j).copied().unwrap_or(false) {
                break true;
            }
            if m.is_attr.get(j).copied().unwrap_or(false) {
                continue;
            }
            break false;
        };
        if !documented {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "missing-doc",
                message: format!("public function `{name}` has no doc comment"),
                excerpt: line.trim().to_string(),
            });
        }
    }
    out
}

/// If the line declares a `pub fn` (not `pub(crate) fn`), its name.
fn pub_fn_name(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let rest = t.strip_prefix("pub ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("const ").unwrap_or(rest);
    let rest = rest.strip_prefix("unsafe ").unwrap_or(rest);
    let rest = rest.strip_prefix("fn ")?;
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("crates/ft-lp/src/simplex.rs"), Scope::Strict);
        assert_eq!(classify("crates/ft-serve/src/service.rs"), Scope::Strict);
        assert_eq!(classify("crates/ft-control/src/advisor.rs"), Scope::Lib);
        assert_eq!(classify("src/cli.rs"), Scope::Lib);
        assert_eq!(classify("src/main.rs"), Scope::Exempt);
        assert_eq!(classify("crates/ft-lp/tests/x.rs"), Scope::Exempt);
        assert_eq!(classify("crates/ft-bench/benches/b.rs"), Scope::Exempt);
        assert_eq!(
            classify("crates/ft-experiments/src/bin/fig7.rs"),
            Scope::Exempt
        );
        assert_eq!(
            classify("crates/ft-lint/fixtures/violating/panics.rs"),
            Scope::Exempt
        );
    }

    #[test]
    fn unwrap_in_strict_lib_flagged() {
        let v = check_file("crates/ft-lp/src/x.rs", "fn f() { let _ = a.unwrap(); }\n");
        assert!(v.iter().any(|v| v.rule == "panic"), "{v:?}");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let v = check_file(
            "crates/ft-lp/src/x.rs",
            "fn f() { let _ = a.unwrap_or(0); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "panic"), "{v:?}");
    }

    #[test]
    fn test_module_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { a.unwrap(); }\n}\n";
        let v = check_file("crates/ft-lp/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_contents_ignored() {
        let v = check_file(
            "crates/ft-lp/src/x.rs",
            "fn f() { let s = \"don't .unwrap() me\"; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_flagged_in_any_lib() {
        let v = check_file(
            "crates/ft-control/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-eq");
    }

    #[test]
    fn integer_eq_not_flagged() {
        let v = check_file(
            "crates/ft-control/src/x.rs",
            "fn f(x: u32) -> bool { x == 0 }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn range_pattern_not_float_eq() {
        let v = check_file(
            "crates/ft-control/src/x.rs",
            "fn f(x: u32) -> bool { matches!(x, 0..=4) }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn truncating_cast_flagged() {
        let v = check_file(
            "crates/ft-graph/src/x.rs",
            "fn f(i: usize) -> u32 { i as u32 }\n",
        );
        assert!(v.iter().any(|v| v.rule == "truncating-cast"), "{v:?}");
    }

    #[test]
    fn widening_cast_ok() {
        let v = check_file(
            "crates/ft-graph/src/x.rs",
            "fn f(i: u32) -> f64 { i as f64 }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn arithmetic_index_needs_comment() {
        let bad = "fn f(v: &[u32], i: usize) -> u32 { v[i + 1] }\n";
        let good = "fn f(v: &[u32], i: usize) -> u32 {\n    // bounds: i + 1 < v.len() by caller contract\n    v[i + 1]\n}\n";
        assert!(check_file("crates/ft-graph/src/x.rs", bad)
            .iter()
            .any(|v| v.rule == "index-bounds"));
        assert!(check_file("crates/ft-graph/src/x.rs", good).is_empty());
    }

    #[test]
    fn plain_index_ok() {
        let v = check_file(
            "crates/ft-graph/src/x.rs",
            "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pub_fn_without_doc_flagged() {
        let src = "pub fn naked() {}\n";
        let v = check_file("crates/ft-lp/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "missing-doc"), "{v:?}");
        let ok = "/// Documented.\npub fn clothed() {}\n";
        assert!(check_file("crates/ft-lp/src/x.rs", ok).is_empty());
        let attr = "/// Documented.\n#[inline]\npub fn with_attr() {}\n";
        assert!(check_file("crates/ft-lp/src/x.rs", attr).is_empty());
    }

    #[test]
    fn pub_crate_fn_needs_no_doc() {
        let v = check_file("crates/ft-lp/src/x.rs", "pub(crate) fn internal() {}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
