//! `lint-allow.toml` — the only sanctioned way to suppress a rule.
//!
//! The file is a sequence of `[[allow]]` tables, each naming the file, the
//! rule, a `contains` substring anchoring the suppression to a specific
//! source line (so it does not rot when line numbers shift), and a
//! mandatory human-readable `reason`. A minimal hand-rolled parser keeps
//! the crate dependency-free; anything outside the accepted subset is a
//! configuration error — suppression must stay auditable.
//!
//! v2 additions: every match is recorded with the index of the entry that
//! produced it (suppression provenance in the JSON/SARIF reports), entries
//! that suppress nothing are a hard error (stale suppressions hide future
//! regressions), and [`rewrite`] renders a pruned file for `--fix-allow`.

use crate::rules::Violation;

/// One suppression entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Rule name (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Substring that must occur in the offending line.
    pub contains: String,
    /// Why the suppression is sound. Mandatory and non-empty.
    pub reason: String,
}

/// Parses the allowlist, rejecting entries without a reason.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validate(e, lineno)?);
            }
            current = Some(AllowEntry {
                path: String::new(),
                rule: String::new(),
                contains: String::new(),
                reason: String::new(),
            });
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            return Err(format!(
                "lint-allow.toml:{lineno}: unrecognized syntax {line:?} (expected `key = \"value\"`)"
            ));
        };
        let Some(e) = current.as_mut() else {
            return Err(format!(
                "lint-allow.toml:{lineno}: key outside an [[allow]] table"
            ));
        };
        match key {
            "path" => e.path = value,
            "rule" => e.rule = value,
            "contains" => e.contains = value,
            "reason" => e.reason = value,
            other => {
                return Err(format!("lint-allow.toml:{lineno}: unknown key {other:?}"));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(validate(e, src.lines().count())?);
    }
    Ok(entries)
}

/// Rejects structurally incomplete entries.
fn validate(e: AllowEntry, lineno: usize) -> Result<AllowEntry, String> {
    if e.path.is_empty() || e.rule.is_empty() {
        return Err(format!(
            "lint-allow.toml:{lineno}: entry must set both `path` and `rule`"
        ));
    }
    if crate::rules::rule_info(&e.rule).is_none() {
        return Err(format!(
            "lint-allow.toml:{lineno}: unknown rule {:?} (see the rule catalog in DESIGN.md §13)",
            e.rule
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "lint-allow.toml:{lineno}: entry for {} lacks a `reason` — every suppression must say why it is sound",
            e.path
        ));
    }
    Ok(e)
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // the subset disallows embedded quotes/escapes — reasons are prose
    if inner.contains('"') || inner.contains('\\') {
        return None;
    }
    Some((key, inner.to_string()))
}

/// Which entry (by index) covers `v`, if any. A match requires the same
/// path and rule, and (when `contains` is set) the substring to occur in
/// the offending line.
pub fn covering_entry(entries: &[AllowEntry], v: &Violation) -> Option<usize> {
    entries.iter().position(|e| {
        e.path == v.path
            && e.rule == v.rule
            && (e.contains.is_empty() || v.excerpt.contains(&e.contains))
    })
}

/// Renders an allowlist keeping only the entries whose index satisfies
/// `keep` — the `--fix-allow` rewriter. The file header comment (leading
/// `#` lines before the first table) is preserved; per-entry comments are
/// not (the `reason` field is the auditable text).
pub fn rewrite(src: &str, entries: &[AllowEntry], keep: &dyn Fn(usize) -> bool) -> String {
    let mut out = String::new();
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with('#') || t.is_empty() {
            out.push_str(line);
            out.push('\n');
        } else {
            break;
        }
    }
    // drop trailing blank lines of the header so entries stay uniform
    while out.ends_with("\n\n") {
        out.pop();
    }
    for (i, e) in entries.iter().enumerate() {
        if !keep(i) {
            continue;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("[[allow]]\n");
        out.push_str(&format!("path = \"{}\"\n", e.path));
        out.push_str(&format!("rule = \"{}\"\n", e.rule));
        if !e.contains.is_empty() {
            out.push_str(&format!("contains = \"{}\"\n", e.contains));
        }
        out.push_str(&format!("reason = \"{}\"\n", e.reason));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[allow]]
path = "crates/ft-graph/src/graph.rs"
rule = "truncating-cast"
contains = "index as u32"
reason = "checked by the assert on the preceding line"
"#;

    fn violation(path: &str, rule: &'static str, excerpt: &str) -> Violation {
        Violation {
            path: path.into(),
            line: 18,
            col: 1,
            rule,
            message: String::new(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn parses_entries() {
        let e = parse(GOOD).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "truncating-cast");
        assert!(e[0].reason.contains("assert"));
    }

    #[test]
    fn missing_reason_rejected() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn empty_reason_rejected() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\nreason = \"  \"\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_rule_rejected() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"no-such-rule\"\nreason = \"x\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unknown_key_rejected() {
        let src =
            "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\nreason = \"x\"\nlinenumber = \"12\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("allow me everything").is_err());
    }

    #[test]
    fn matching_respects_contains() {
        let entries = parse(GOOD).unwrap();
        let covered = violation(
            "crates/ft-graph/src/graph.rs",
            "truncating-cast",
            "index as u32 // checked",
        );
        assert_eq!(covering_entry(&entries, &covered), Some(0));
        let other_line = violation(
            "crates/ft-graph/src/graph.rs",
            "truncating-cast",
            "other as u32",
        );
        assert_eq!(covering_entry(&entries, &other_line), None);
        let other_rule = violation("crates/ft-graph/src/graph.rs", "panic", "index as u32");
        assert_eq!(covering_entry(&entries, &other_rule), None);
    }

    #[test]
    fn rewrite_prunes_and_keeps_header() {
        let src = "# Lint allowlist.\n# Keep it short.\n\n[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\nreason = \"one\"\n\n[[allow]]\npath = \"b.rs\"\nrule = \"wallclock\"\ncontains = \"now\"\nreason = \"two\"\n";
        let entries = parse(src).unwrap();
        let out = rewrite(src, &entries, &|i| i == 1);
        assert!(out.starts_with("# Lint allowlist.\n# Keep it short.\n"));
        assert!(!out.contains("a.rs"));
        assert!(out.contains("path = \"b.rs\""));
        assert!(out.contains("contains = \"now\""));
        // a rewrite of a rewrite is a fixed point
        let reparsed = parse(&out).unwrap();
        assert_eq!(rewrite(&out, &reparsed, &|_| true), out);
    }
}
