//! `lint-allow.toml` — the only sanctioned way to suppress a rule.
//!
//! The file is a sequence of `[[allow]]` tables, each naming the file, the
//! rule, a `contains` substring anchoring the suppression to a specific
//! source line (so it does not rot when line numbers shift), and a
//! mandatory human-readable `reason`. A minimal hand-rolled parser keeps
//! the crate dependency-free; anything outside the accepted subset is a
//! configuration error — suppression must stay auditable.

use crate::rules::Violation;

/// One suppression entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Rule name (see the rule constants in [`crate::rules`]).
    pub rule: String,
    /// Substring that must occur in the offending line.
    pub contains: String,
    /// Why the suppression is sound. Mandatory and non-empty.
    pub reason: String,
}

/// Parses the allowlist, rejecting entries without a reason.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validate(e, lineno)?);
            }
            current = Some(AllowEntry {
                path: String::new(),
                rule: String::new(),
                contains: String::new(),
                reason: String::new(),
            });
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            return Err(format!(
                "lint-allow.toml:{lineno}: unrecognized syntax {line:?} (expected `key = \"value\"`)"
            ));
        };
        let Some(e) = current.as_mut() else {
            return Err(format!(
                "lint-allow.toml:{lineno}: key outside an [[allow]] table"
            ));
        };
        match key {
            "path" => e.path = value,
            "rule" => e.rule = value,
            "contains" => e.contains = value,
            "reason" => e.reason = value,
            other => {
                return Err(format!("lint-allow.toml:{lineno}: unknown key {other:?}"));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(validate(e, src.lines().count())?);
    }
    Ok(entries)
}

/// Rejects structurally incomplete entries.
fn validate(e: AllowEntry, lineno: usize) -> Result<AllowEntry, String> {
    if e.path.is_empty() || e.rule.is_empty() {
        return Err(format!(
            "lint-allow.toml:{lineno}: entry must set both `path` and `rule`"
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "lint-allow.toml:{lineno}: entry for {} lacks a `reason` — every suppression must say why it is sound",
            e.path
        ));
    }
    Ok(e)
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // the subset disallows embedded quotes/escapes — reasons are prose
    if inner.contains('"') || inner.contains('\\') {
        return None;
    }
    Some((key, inner.to_string()))
}

/// Whether `v` is covered by an entry. A match requires the same path and
/// rule, and (when `contains` is set) the substring to occur in the line.
pub fn is_allowed(entries: &[AllowEntry], v: &Violation) -> bool {
    entries.iter().any(|e| {
        e.path == v.path
            && e.rule == v.rule
            && (e.contains.is_empty() || v.excerpt.contains(&e.contains))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[allow]]
path = "crates/ft-graph/src/graph.rs"
rule = "truncating-cast"
contains = "index as u32"
reason = "checked by the assert on the preceding line"
"#;

    #[test]
    fn parses_entries() {
        let e = parse(GOOD).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "truncating-cast");
        assert!(e[0].reason.contains("assert"));
    }

    #[test]
    fn missing_reason_rejected() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn empty_reason_rejected() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\nreason = \"  \"\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        let src =
            "[[allow]]\npath = \"a.rs\"\nrule = \"panic\"\nreason = \"x\"\nlinenumber = \"12\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("allow me everything").is_err());
    }

    #[test]
    fn matching_respects_contains() {
        let entries = parse(GOOD).unwrap();
        let mut v = Violation {
            path: "crates/ft-graph/src/graph.rs".into(),
            line: 18,
            rule: "truncating-cast",
            message: String::new(),
            excerpt: "index as u32 // checked".into(),
        };
        assert!(is_allowed(&entries, &v));
        v.excerpt = "other as u32".into();
        assert!(!is_allowed(&entries, &v));
        v.excerpt = "index as u32 // checked".into();
        v.rule = "panic";
        assert!(!is_allowed(&entries, &v));
    }
}
