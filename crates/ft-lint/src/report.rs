//! Report rendering: human-readable text, machine-readable JSON
//! (`ft-lint/2` schema), and SARIF 2.1.0 for code-scanning UIs.
//!
//! All renderers are dependency-free; JSON strings go through
//! [`json_escape`], and every list is emitted in the deterministic order
//! the analyzer produced (path, line, column, rule).

use crate::allow::AllowEntry;
use crate::rules::{Violation, RULES};
use crate::{Report, Suppression};

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation, indent: &str) -> String {
    format!(
        "{indent}{{\"path\": \"{}\", \"line\": {}, \"column\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"excerpt\": \"{}\"}}",
        json_escape(&v.path),
        v.line,
        v.col,
        v.rule,
        json_escape(&v.message),
        json_escape(&v.excerpt)
    )
}

fn entry_json(e: &AllowEntry, index: usize, indent: &str) -> String {
    format!(
        "{indent}{{\"index\": {index}, \"path\": \"{}\", \"rule\": \"{}\", \"contains\": \"{}\", \"reason\": \"{}\"}}",
        json_escape(&e.path),
        json_escape(&e.rule),
        json_escape(&e.contains),
        json_escape(&e.reason)
    )
}

fn suppression_json(s: &Suppression, indent: &str) -> String {
    format!(
        "{indent}{{\"path\": \"{}\", \"line\": {}, \"column\": {}, \"rule\": \"{}\", \"allow_index\": {}, \"reason\": \"{}\"}}",
        json_escape(&s.violation.path),
        s.violation.line,
        s.violation.col,
        s.violation.rule,
        s.entry_index,
        json_escape(&s.reason)
    )
}

/// Renders the `ft-lint/2` JSON report.
pub fn to_json(report: &Report, root: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ft-lint/2\",\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", json_escape(root)));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| violation_json(v, "    "))
        .collect();
    out.push_str(&format!(
        "  \"violations\": [\n{}\n  ],\n",
        violations.join(",\n")
    ));
    if report.violations.is_empty() {
        out = out.replace("  \"violations\": [\n\n  ],\n", "  \"violations\": [],\n");
    }
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| suppression_json(s, "    "))
        .collect();
    if suppressed.is_empty() {
        out.push_str("  \"suppressed\": [],\n");
    } else {
        out.push_str(&format!(
            "  \"suppressed\": [\n{}\n  ],\n",
            suppressed.join(",\n")
        ));
    }
    let unused: Vec<String> = report
        .unused_allow
        .iter()
        .map(|(i, e)| entry_json(e, *i, "    "))
        .collect();
    if unused.is_empty() {
        out.push_str("  \"unused_allow\": []\n");
    } else {
        out.push_str(&format!(
            "  \"unused_allow\": [\n{}\n  ]\n",
            unused.join(",\n")
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders a SARIF 2.1.0 log with the rule catalog and one result per
/// unsuppressed violation.
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "          {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"properties\": {{\"pack\": \"{}\"}}}}",
                r.id,
                json_escape(r.summary),
                r.pack
            )
        })
        .collect();
    let results: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                concat!(
                    "      {{\"ruleId\": \"{}\", \"level\": \"error\", ",
                    "\"message\": {{\"text\": \"{}\"}}, ",
                    "\"locations\": [{{\"physicalLocation\": {{",
                    "\"artifactLocation\": {{\"uri\": \"{}\"}}, ",
                    "\"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}"
                ),
                v.rule,
                json_escape(&v.message),
                json_escape(&v.path),
                v.line,
                v.col
            )
        })
        .collect();
    let results_block = if results.is_empty() {
        "      ".to_string()
    } else {
        results.join(",\n")
    };
    format!(
        concat!(
            "{{\n",
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
            "  \"version\": \"2.1.0\",\n",
            "  \"runs\": [{{\n",
            "    \"tool\": {{\n",
            "      \"driver\": {{\n",
            "        \"name\": \"ft-lint\",\n",
            "        \"version\": \"2.0.0\",\n",
            "        \"rules\": [\n{}\n        ]\n",
            "      }}\n",
            "    }},\n",
            "    \"results\": [\n{}\n    ]\n",
            "  }}]\n",
            "}}\n"
        ),
        rules.join(",\n"),
        results_block
    )
}

/// Renders the human-readable report printed by the CLI.
pub fn to_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            v.path, v.line, v.col, v.rule, v.message
        ));
    }
    for (i, e) in &report.unused_allow {
        out.push_str(&format!(
            "lint-allow.toml: entry #{i} ({} / {}) suppresses nothing — delete it or run --fix-allow\n",
            e.path, e.rule
        ));
    }
    out.push_str(&format!(
        "ft-lint: {} file(s) scanned, {} violation(s), {} suppressed via lint-allow.toml, {} unused allow entr{}\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.unused_allow.len(),
        if report.unused_allow.len() == 1 { "y" } else { "ies" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                path: "crates/ft-x/src/lib.rs".into(),
                line: 3,
                col: 9,
                rule: "panic",
                message: "`.unwrap()` in library code; return a Result instead".into(),
                excerpt: "a.unwrap();".into(),
            }],
            files_scanned: 2,
            suppressed: vec![Suppression {
                violation: Violation {
                    path: "crates/ft-y/src/lib.rs".into(),
                    line: 7,
                    col: 1,
                    rule: "wallclock",
                    message: "m".into(),
                    excerpt: "Instant::now()".into(),
                },
                entry_index: 0,
                reason: "latency metrics only".into(),
            }],
            unused_allow: Vec::new(),
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\tok"), "tab\\tok");
    }

    #[test]
    fn json_report_has_schema_and_provenance() {
        let j = to_json(&sample(), ".");
        assert!(j.contains("\"schema\": \"ft-lint/2\""));
        assert!(j.contains("\"rule\": \"panic\""));
        assert!(j.contains("\"allow_index\": 0"));
        assert!(j.contains("\"reason\": \"latency metrics only\""));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn json_clean_report_has_empty_arrays() {
        let r = Report {
            violations: Vec::new(),
            files_scanned: 1,
            suppressed: Vec::new(),
            unused_allow: Vec::new(),
        };
        let j = to_json(&r, "/w");
        assert!(j.contains("\"violations\": []"));
        assert!(j.contains("\"unused_allow\": []"));
        assert!(j.contains("\"clean\": true"));
    }

    #[test]
    fn sarif_lists_all_rules() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        for r in RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        assert!(s.contains("\"startLine\": 3"));
    }

    #[test]
    fn text_mentions_unused_entries() {
        let mut r = sample();
        r.unused_allow.push((
            2,
            crate::allow::AllowEntry {
                path: "gone.rs".into(),
                rule: "panic".into(),
                contains: String::new(),
                reason: "obsolete".into(),
            },
        ));
        let t = to_text(&r);
        assert!(t.contains("entry #2"));
        assert!(t.contains("suppresses nothing"));
    }
}
