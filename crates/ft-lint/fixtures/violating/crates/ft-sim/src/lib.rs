// Fixture: one violation of every determinism/concurrency-pack rule, in
// a deterministic strict crate. Together with ../../ft-graph/src/lib.rs
// the violating tree exercises all eleven rule ids.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// Determinism: iterating an unordered container.
pub fn rule_unordered_iter(m: &HashMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_k, v) in m {
        s += v;
    }
    s
}

/// Determinism: wall-clock read in a deterministic crate.
pub fn rule_wallclock() {
    let _ = std::time::Instant::now();
}

/// Determinism: thread-count dependence outside the worker pool.
pub fn rule_thread_dependent() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Concurrency: Relaxed load used as a synchronization flag.
pub fn rule_relaxed_sync(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

/// Concurrency: lock guard held across a blocking send.
pub fn rule_lock_across_blocking(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g);
}

/// Concurrency: mutable static.
pub static mut RULE_STATIC_MUT: u32 = 0;
