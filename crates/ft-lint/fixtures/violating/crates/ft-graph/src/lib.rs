// Fixture: one violation of every ft-lint rule, in strict-crate library
// position. `cargo run -p ft-lint -- crates/ft-lint/fixtures/violating`
// must exit non-zero with five findings.

/// Rule 1: panicking constructs in library code.
pub fn rule_panic(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Rule 2: float equality against a literal.
pub fn rule_float_eq(x: f64) -> bool {
    x == 0.0
}

/// Rule 3: truncating cast on an index.
pub fn rule_cast(i: usize) -> u32 {
    i as u32
}

/// Rule 4 target: the undocumented function below.
pub fn rule_index(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}

pub fn rule_missing_doc() {}
