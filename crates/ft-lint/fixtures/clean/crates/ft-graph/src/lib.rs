// Fixture: the clean counterpart of every rule in `../../../violating`.
// `cargo run -p ft-lint -- crates/ft-lint/fixtures/clean` must exit 0.

/// Rule 1: fallible code returns a Result (or defaults).
pub fn rule_panic(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

/// Rule 2: epsilon comparison.
pub fn rule_float_eq(x: f64) -> bool {
    x.abs() < 1e-12
}

/// Rule 3: checked conversion.
pub fn rule_cast(i: usize) -> Option<u32> {
    u32::try_from(i).ok()
}

/// Rule 4: arithmetic index with a bounds comment.
pub fn rule_index(v: &[u32], i: usize) -> u32 {
    // bounds: caller guarantees i + 1 < v.len()
    v[i + 1]
}

/// Rule 5: documented public function.
pub fn rule_doc() {}

#[cfg(test)]
mod tests {
    /// Tests are exempt: unwrap freely.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
