// Fixture: the clean counterpart of the determinism/concurrency rules in
// `../../../violating`. Same shapes, compliant constructs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// Determinism: ordered iteration is reproducible.
pub fn rule_unordered_iter(m: &BTreeMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_k, v) in m {
        s += v;
    }
    s
}

/// Determinism: logical time instead of wall clocks.
pub fn rule_wallclock(tick: u64) -> u64 {
    tick + 1
}

/// Determinism: worker count is a parameter, not an ambient read.
pub fn rule_thread_dependent(workers: usize) -> usize {
    workers.max(1)
}

/// Concurrency: Acquire pairs with the writer's Release.
pub fn rule_relaxed_sync(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

/// Concurrency: Relaxed is fine for a pure counter.
pub fn rule_relaxed_counter(c: &AtomicU32) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Concurrency: copy the value out, drop the guard, then send.
pub fn rule_lock_across_blocking(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v);
}

/// Concurrency: an atomic instead of a mutable static.
pub static RULE_ATOMIC: AtomicU32 = AtomicU32::new(0);
