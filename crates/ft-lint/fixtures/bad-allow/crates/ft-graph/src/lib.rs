/// The allowlist next door is malformed; this file is otherwise clean.
pub fn fine() {}
