//! Path-restricted maximum concurrent flow.
//!
//! The paper's throughput methodology assumes *optimal routing* (§3.1) —
//! flow may split arbitrarily over every path. A real deployment routes
//! over a small path set (ECMP or k-shortest paths, §2.6). This module
//! solves the concurrent-flow LP restricted to explicit per-commodity path
//! sets, so the *routing gap* — optimal λ vs achievable-under-KSP λ — can
//! be quantified (see the `routing_gap` integration tests and the
//! `mode_selection` example).
//!
//! Formulation (path-based, exact, via `ft-lp`):
//!
//! ```text
//! maximize   λ
//! subject to Σ_{p ∋ a} x_p ≤ cap(a)          for every arc a
//!            Σ_{p ∈ P_j} x_p = λ·d_j          for every commodity j
//!            x ≥ 0
//! ```
//!
//! Variables are per-path flows, so the LP stays small for the k ≤ 8 path
//! sets routing actually uses.

use crate::digraph::{CapGraph, DijkstraScratch};
use crate::{Commodity, McfError};
use ft_lp::{LpError, LpOutcome, LpProblem, Var};

/// A directed path for one commodity: the arc indices it traverses.
pub type ArcPath = Vec<usize>;

/// Solves max concurrent flow restricted to the given path sets.
///
/// `paths[j]` are the admissible paths of `commodities[j]` (arc-index
/// lists from `CapGraph::shortest_path` or expanded from routing tables).
/// Returns 0.0 if any commodity has an empty path set (it cannot route at
/// all), `f64::INFINITY` for an empty commodity list.
///
/// # Errors
/// [`McfError::PathSetMismatch`] if `paths.len() != commodities.len()`;
/// [`McfError::Solver`] on an internal LP inconsistency. Path/endpoint
/// consistency is still a debug assertion.
pub fn max_concurrent_flow_on_paths(
    g: &CapGraph,
    commodities: &[Commodity],
    paths: &[Vec<ArcPath>],
) -> Result<f64, McfError> {
    if commodities.len() != paths.len() {
        return Err(McfError::PathSetMismatch {
            commodities: commodities.len(),
            path_sets: paths.len(),
        });
    }
    if commodities.is_empty() {
        return Ok(f64::INFINITY);
    }
    if paths.iter().any(|p| p.is_empty()) {
        return Ok(0.0);
    }
    #[cfg(debug_assertions)]
    for (c, ps) in commodities.iter().zip(paths) {
        for p in ps {
            if let (Some(&first), Some(&last)) = (p.first(), p.last()) {
                debug_assert_eq!(g.arc(first).from, c.src, "path must start at src");
                debug_assert_eq!(g.arc(last).to, c.dst, "path must end at dst");
            }
        }
    }

    let mut lp = LpProblem::new();
    let lambda = lp.add_var(1.0);
    // per-path flow variables
    let xs: Vec<Vec<Var>> = paths
        .iter()
        .map(|ps| ps.iter().map(|_| lp.add_var(0.0)).collect())
        .collect();
    // arc capacities
    let mut on_arc: Vec<Vec<Var>> = vec![Vec::new(); g.arc_count()];
    for (j, ps) in paths.iter().enumerate() {
        for (pi, p) in ps.iter().enumerate() {
            for &a in p {
                on_arc[a].push(xs[j][pi]);
            }
        }
    }
    for (a, vars) in on_arc.iter().enumerate() {
        if !vars.is_empty() {
            let terms: Vec<(Var, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            lp.add_le(&terms, g.arc(a).cap);
        }
    }
    // demand satisfaction
    for (j, c) in commodities.iter().enumerate() {
        let mut terms: Vec<(Var, f64)> = xs[j].iter().map(|&v| (v, 1.0)).collect();
        terms.push((lambda, -c.demand));
        lp.add_eq(&terms, 0.0);
    }
    match lp.solve() {
        LpOutcome::Optimal(s) => Ok(s.value(lambda)),
        // The zero flow is always feasible, so this is a solver defect.
        LpOutcome::Infeasible => Err(McfError::Solver(LpError::Infeasible)),
        LpOutcome::Unbounded => Ok(f64::INFINITY),
    }
}

/// Enumerates up to `k` shortest arc-paths per commodity under hop-count
/// lengths, as a routing-realistic path set. This is a light-weight
/// per-commodity Yen on the directed graph (sufficient for the small k
/// used by routing; `ft-control` owns the production KSP machinery on the
/// undirected switch graph).
pub fn k_shortest_arc_paths(g: &CapGraph, c: &Commodity, k: usize) -> Vec<ArcPath> {
    let ones = vec![1.0; g.arc_count()];
    // one Dijkstra scratch plus one lengths buffer, reused across all spur
    // computations (the buffer is re-initialized from `ones` per spur
    // instead of cloning a fresh vector)
    let mut scratch = DijkstraScratch::new();
    let mut lengths = ones.clone();
    let mut accepted: Vec<(ArcPath, f64)> = Vec::new();
    let Some(len) = g.shortest_path_with(c.src, c.dst, &ones, &mut scratch) else {
        return Vec::new();
    };
    accepted.push((scratch.path().to_vec(), len));
    let mut candidates: Vec<(ArcPath, f64)> = Vec::new();
    while accepted.len() < k {
        let Some((prev, _)) = accepted.last().cloned() else {
            break; // unreachable: `accepted` starts with the first path
        };
        // spur at every prefix: ban the next arc of same-prefix accepted
        // paths by inflating its length
        for spur in 0..prev.len() {
            let root = &prev[..spur];
            lengths.copy_from_slice(&ones);
            for (p, _) in &accepted {
                if p.len() > spur && &p[..spur] == root {
                    lengths[p[spur]] = f64::INFINITY;
                }
            }
            // also ban revisiting root nodes by inflating their out-arcs
            let spur_node = if spur == 0 {
                c.src
            } else {
                // bounds: spur > 0 in this branch, so spur - 1 < prev.len()
                g.arc(prev[spur - 1]).to
            };
            let mut banned_nodes: Vec<usize> = root.iter().map(|&a| g.arc(a).from).collect();
            banned_nodes.retain(|&v| v != spur_node);
            for &v in &banned_nodes {
                for &ai in g.out_arcs(v) {
                    lengths[ai as usize] = f64::INFINITY;
                }
            }
            if let Some(tail_len) = g.shortest_path_with(spur_node, c.dst, &lengths, &mut scratch) {
                if tail_len.is_finite() {
                    let mut path = root.to_vec();
                    path.extend_from_slice(scratch.path());
                    let total = path.len() as f64;
                    if !accepted.iter().any(|(p, _)| *p == path)
                        && !candidates.iter().any(|(p, _)| *p == path)
                    {
                        candidates.push((path, total));
                    }
                }
            }
        }
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best));
    }
    accepted.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_concurrent_flow_exact;
    use ft_graph::Graph;

    fn unit(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    #[test]
    fn single_path_restriction() {
        // diamond: optimal routing λ = 2 (two disjoint paths); restricted
        // to one path λ = 1
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let c = Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        };
        let one = k_shortest_arc_paths(&g, &c, 1);
        assert_eq!(one.len(), 1);
        let l1 = max_concurrent_flow_on_paths(&g, &[c], &[one]).unwrap();
        assert!((l1 - 1.0).abs() < 1e-6, "λ = {l1}");
        let two = k_shortest_arc_paths(&g, &c, 2);
        assert_eq!(two.len(), 2);
        let l2 = max_concurrent_flow_on_paths(&g, &[c], &[two]).unwrap();
        assert!((l2 - 2.0).abs() < 1e-6, "λ = {l2}");
    }

    #[test]
    fn enough_paths_recover_optimum() {
        // K4: with generous path sets, the path-restricted LP matches the
        // edge-based optimum
        let g = unit(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 2,
                demand: 1.0,
            },
        ];
        let exact = max_concurrent_flow_exact(&g, &cs).unwrap();
        let paths: Vec<Vec<ArcPath>> = cs.iter().map(|c| k_shortest_arc_paths(&g, c, 8)).collect();
        let restricted = max_concurrent_flow_on_paths(&g, &cs, &paths).unwrap();
        assert!(restricted <= exact + 1e-6);
        assert!(
            restricted >= exact - 1e-6,
            "restricted {restricted} vs exact {exact}"
        );
    }

    #[test]
    fn restriction_never_helps() {
        let g = unit(5, &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4), (1, 2)]);
        let cs = [Commodity {
            src: 0,
            dst: 4,
            demand: 2.0,
        }];
        let exact = max_concurrent_flow_exact(&g, &cs).unwrap();
        for k in 1..=4 {
            let paths = vec![k_shortest_arc_paths(&g, &cs[0], k)];
            let restricted = max_concurrent_flow_on_paths(&g, &cs, &paths).unwrap();
            assert!(
                restricted <= exact + 1e-6,
                "k = {k}: restricted {restricted} beats exact {exact}"
            );
        }
    }

    #[test]
    fn empty_path_set_zero() {
        let g = unit(3, &[(0, 1)]);
        let c = Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        };
        assert!(k_shortest_arc_paths(&g, &c, 3).is_empty());
        let l = max_concurrent_flow_on_paths(&g, &[c], &[vec![]]).unwrap();
        assert_eq!(l, 0.0);
    }

    #[test]
    fn no_commodities_infinite() {
        let g = unit(2, &[(0, 1)]);
        assert!(max_concurrent_flow_on_paths(&g, &[], &[])
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn path_set_mismatch_rejected() {
        let g = unit(2, &[(0, 1)]);
        let c = Commodity {
            src: 0,
            dst: 1,
            demand: 1.0,
        };
        let err = max_concurrent_flow_on_paths(&g, &[c], &[]).unwrap_err();
        assert_eq!(
            err,
            McfError::PathSetMismatch {
                commodities: 1,
                path_sets: 0
            }
        );
    }

    #[test]
    fn ksp_paths_are_simple_and_sorted() {
        let g = unit(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let c = Commodity {
            src: 0,
            dst: 4,
            demand: 1.0,
        };
        let ps = k_shortest_arc_paths(&g, &c, 5);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len(), "paths must be sorted by hops");
        }
        for p in &ps {
            // no repeated nodes
            let mut nodes = vec![g.arc(p[0]).from];
            for &a in p {
                nodes.push(g.arc(a).to);
            }
            let mut dedup = nodes.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), nodes.len(), "loop in {p:?}");
        }
    }
}
