//! Sharded and symmetry-aggregated variants of the batched FPTAS —
//! the k = 64/128 scaling layer on top of [`crate::fptas`].
//!
//! # Sharded tree batches
//!
//! [`max_concurrent_flow_sharded`] keeps the Fleischer source/sink-batched
//! routing loop of [`crate::fptas::max_concurrent_flow`] but builds the
//! phase's shortest-path trees in *rounds*: every group with pending demand
//! gets one tree per round, and the round's trees are computed concurrently
//! on the [`ft_graph::par`] worker pool (one [`DijkstraScratch`] per
//! worker, worker-local result lists merged back in group order). All trees
//! of a round read the **same** length snapshot — the live length array,
//! immutable while the round builds — and their path proposals are applied
//! sequentially in group order afterwards. A proposal stays valid under
//! the Fleischer `(1 + ε)` band because lengths only grow: the snapshot
//! tree distance lower-bounds the live shortest-path distance, so a path
//! whose *live* length is within `(1 + ε)` of its *snapshot* distance is a
//! `(1 + ε)`-approximate shortest path. Members that drift out of band are
//! deferred to the next round (which rebuilds their tree). The schedule is
//! a pure function of `(graph, commodities, options)`: the worker count
//! changes which thread computes a tree, never the tree itself or the
//! apply order, so λ is bit-identical across `FT_THREADS` (DESIGN.md §10).
//!
//! The first proposal of every round is applied against exactly the
//! lengths it was built under, so it always routes at least one push —
//! each round makes progress and the `D(l) ≥ 1` termination argument of
//! the batched loop carries over unchanged, as do the budget-rescue gap
//! certificate, the primal reset, and the certified-λ reporting.
//!
//! # Symmetry-aware commodity aggregation
//!
//! [`AggregatedInstance`] collapses the commodity set of a vertex-transitive
//! workload using automorphism classes from `ft_topo::SymmetryClasses`
//! (passed as a plain `&[u32]` node-class slice — ft-mcf stays independent
//! of ft-topo). Commodities whose (source class, destination class,
//! hop distance) triples coincide form one *orbit*; the orbit is replaced
//! by its first member with the orbit's total demand. Arcs are likewise
//! grouped into classes keyed by (tail class, head class), and the solver
//! runs the Garg–Könemann packing scheme over *arc classes* as the
//! capacitated elements: a class of `q` unit-capacity arcs has capacity
//! `q`, a path's cost is the sum of its arcs' class lengths, and a push of
//! `f` raises the class length once per occurrence. By symmetry, the
//! averaged orbit of an optimal flow is an optimal *symmetric* flow that
//! loads every arc of a class equally — the quotient packing LP has the
//! same optimum λ, at O(classes²) commodities instead of O(n²).
//!
//! Soundness does not rest on the caller's class slice alone:
//! [`AggregatedInstance::from_commodities`] verifies *closure* — every
//! orbit must contain exactly `|A| · |{w ∈ B : dist(rep_A, w) = h}|`
//! commodities of identical demand — and requires graph-wide uniform arc
//! capacity ([`CapGraph::uniform_cap`]). Any violation yields `None` and
//! the caller falls back to the full instance. With all-singleton classes
//! (converted or otherwise asymmetric topologies) the aggregation
//! degenerates to the identity: the instance is solved exactly as
//! [`max_concurrent_flow_sharded`] would solve the original commodity
//! list, bit for bit.
//!
//! # Deduped-distance warm starts
//!
//! Both entry points accept a hop-distance oracle
//! ([`ShardConfig::warm`]) — in production the shared
//! `SwitchDistances`/`DedupedApsp` rows computed by ft-metrics. When the
//! oracle covers every commodity it replaces the per-group reachability
//! SSSPs with O(1) lookups and contributes the distance-volume upper bound
//! `λ ≤ Σ cap / Σ_j d_j·hops_j`, which tightens the demand pre-scaling and
//! seeds the budget-rescue dual bound (the PR 4 gap machinery certifies
//! the resulting λ exactly as in the batched solver). The oracle is purely
//! advisory: `None` answers fall back to the cold path, and the certified
//! λ never depends on oracle values — only the schedule does.

use crate::bounds::node_cut_upper_bound;
use crate::digraph::{CapGraph, DijkstraScratch, ReverseIndex};
use crate::fptas::{self, group_commodities, FptasOptions, Group, McfSolution};
use crate::{Commodity, McfError};
use ft_graph::id32;
use std::sync::OnceLock;

/// Hop-distance oracle: `dist(a, b)` in hops, `Some(u32::MAX)` when `b` is
/// unreachable from `a`, `None` when the oracle has no data for the pair
/// (the solver then falls back to its own SSSPs). Backed in production by
/// the deduped APSP rows of ft-metrics.
pub type DistanceOracle<'a> = &'a (dyn Fn(usize, usize) -> Option<u32> + Sync);

/// Configuration of the sharded solver: worker count and optional
/// warm-start distance oracle.
#[derive(Clone, Copy, Default)]
pub struct ShardConfig<'a> {
    /// Worker threads for the per-round tree builds; `0` means the
    /// [`ft_graph::par::thread_count`] pool default. The result is
    /// bit-identical for every value.
    pub threads: usize,
    /// Optional hop-distance oracle for reachability pre-checks and the
    /// distance-volume upper bound; see [`DistanceOracle`].
    pub warm: Option<DistanceOracle<'a>>,
}

impl<'a> ShardConfig<'a> {
    /// A config pinning the worker count (0 = pool default).
    pub fn with_threads(threads: usize) -> Self {
        ShardConfig {
            threads,
            warm: None,
        }
    }

    /// Resolved worker count.
    fn workers(&self) -> usize {
        if self.threads == 0 {
            ft_graph::par::thread_count()
        } else {
            self.threads
        }
    }
}

impl std::fmt::Debug for ShardConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardConfig")
            .field("threads", &self.threads)
            .field("warm", &self.warm.is_some())
            .finish()
    }
}

/// Shard-specific registry handles (the shared FPTAS counters — runs,
/// phases, trees, pushes, deferrals, rescue, budget — are reused from
/// [`fptas::obs`]).
struct ShardCounters {
    rounds: &'static ft_obs::Counter,
    aggregated_runs: &'static ft_obs::Counter,
    aggregated_commodities: &'static ft_obs::Gauge,
}

/// Strictly-positive test that treats NaN as *not* positive, exactly like
/// the `!(w > 0.0)` guards it replaces — a NaN weight or residual must be
/// skipped, never routed.
fn positive(w: f64) -> bool {
    w > 0.0
}

fn shard_obs() -> &'static ShardCounters {
    static CELL: OnceLock<ShardCounters> = OnceLock::new();
    CELL.get_or_init(|| ShardCounters {
        rounds: ft_obs::registry::counter("ft_mcf_shard_rounds_total"),
        aggregated_runs: ft_obs::registry::counter("ft_mcf_aggregated_runs_total"),
        aggregated_commodities: ft_obs::registry::gauge("ft_mcf_aggregated_commodities"),
    })
}

/// Grouping of arcs into capacity classes — the capacitated *elements* of
/// the packing scheme. The identity model (one class per arc) reproduces
/// the plain per-arc solver; the node-class model groups arcs by
/// (tail class, head class) for the symmetry-aggregated solver.
#[derive(Clone, Debug)]
struct ArcModel {
    /// Class id of each arc.
    class_of: Vec<u32>,
    /// Total capacity of each class (class size × the uniform arc cap).
    class_cap: Vec<f64>,
    /// CSR listing of the arcs in each class (empty for the identity
    /// model, which never needs per-class refresh).
    class_arcs: Vec<u32>,
    /// CSR offsets into `class_arcs`, length `classes + 1`.
    class_start: Vec<u32>,
    /// One class per arc: length refresh is done in-place on push and the
    /// CSR stays empty.
    identity: bool,
}

impl ArcModel {
    /// One class per arc — the model under which the sharded solver is the
    /// plain batched FPTAS with a parallel tree schedule.
    fn identity(g: &CapGraph) -> ArcModel {
        let m = g.arc_count();
        ArcModel {
            class_of: (0..m).map(id32).collect(),
            class_cap: (0..m).map(|a| g.arc(a).cap).collect(),
            class_arcs: Vec::new(),
            class_start: Vec::new(),
            identity: true,
        }
    }

    /// Groups arcs by (tail class, head class) in first-appearance order.
    /// Requires graph-wide uniform arc capacity (each class's capacity is
    /// `size × cap`, which is only the orbit capacity when every member
    /// has the same cap); returns `None` otherwise.
    fn from_node_classes(g: &CapGraph, node_class: &[u32]) -> Option<ArcModel> {
        use std::collections::HashMap;
        if node_class.len() != g.node_count() {
            return None;
        }
        let unit = g.uniform_cap()?;
        let m = g.arc_count();
        let mut key_to_class: HashMap<(u32, u32), u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(m);
        let mut class_size: Vec<u32> = Vec::new();
        for a in 0..m {
            let arc = g.arc(a);
            let key = (node_class[arc.from], node_class[arc.to]);
            let o = match key_to_class.get(&key) {
                Some(&o) => o,
                None => {
                    let o = id32(class_size.len());
                    key_to_class.insert(key, o);
                    class_size.push(0);
                    o
                }
            };
            class_size[o as usize] += 1;
            class_of.push(o);
        }
        let classes = class_size.len();
        let mut class_start = vec![0u32; classes + 1];
        for &o in &class_of {
            // bounds: o + 1 <= classes, the offset array's last slot
            class_start[o as usize + 1] += 1;
        }
        for o in 0..classes {
            // bounds: o + 1 <= classes by the loop range
            class_start[o + 1] += class_start[o];
        }
        let mut cursor: Vec<u32> = class_start[..classes].to_vec();
        let mut class_arcs = vec![0u32; m];
        for (a, &o) in class_of.iter().enumerate() {
            class_arcs[cursor[o as usize] as usize] = id32(a);
            cursor[o as usize] += 1;
        }
        Some(ArcModel {
            class_of,
            class_cap: class_size.iter().map(|&s| f64::from(s) * unit).collect(),
            class_arcs,
            class_start,
            identity: false,
        })
    }

    /// Number of capacity classes.
    fn classes(&self) -> usize {
        self.class_cap.len()
    }
}

/// A symmetry-collapsed commodity instance: one representative commodity
/// per (source class, destination class, hop distance) orbit, with the
/// orbit's total demand, plus the arc-class model the quotient solver runs
/// on. Build with [`AggregatedInstance::from_commodities`] (verified
/// closure over an explicit commodity list) or
/// [`AggregatedInstance::all_to_all`] (symbolic uniform all-to-all, for
/// scales where the full pair list cannot be materialized); solve with
/// [`max_concurrent_flow_aggregated`].
#[derive(Clone, Debug)]
pub struct AggregatedInstance {
    commodities: Vec<Commodity>,
    node_class: Vec<u32>,
    model: ArcModel,
    original: usize,
    identity: bool,
}

impl AggregatedInstance {
    /// The representative commodities (orbit demand totals) the solver
    /// runs on.
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Number of original commodities the instance represents.
    pub fn original_commodities(&self) -> usize {
        self.original
    }

    /// Number of arc classes of the quotient model (equals the arc count
    /// for an identity instance).
    pub fn arc_classes(&self) -> usize {
        if self.identity {
            self.model.class_of.len()
        } else {
            self.model.classes()
        }
    }

    /// `true` when no aggregation happened (all orbits are singletons —
    /// e.g. converted/asymmetric topologies where every symmetry class is
    /// a single node). The solver then runs on the original commodity list
    /// and its λ is bit-identical to [`max_concurrent_flow_sharded`].
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Aggregates an explicit commodity list under the given node classes.
    ///
    /// `node_class` must assign each graph node its automorphism-class id
    /// (`ft_topo::SymmetryClasses::class_slice`); `dist` must answer hop
    /// distances for every commodity pair and every
    /// (class representative, node) pair. The orbit structure is verified
    /// against the representative's distance row — every orbit must be
    /// *closed* (contain exactly `|A| · |{w ∈ B : dist(rep_A, w) = h}|`
    /// members) and demand-uniform, and the graph must have uniform arc
    /// capacity. Returns `None` on any violation, or whenever `dist` lacks
    /// data; callers then solve the original instance instead. Passing
    /// node classes that do not come from verified automorphisms can
    /// produce an instance that passes these checks but misreports λ —
    /// the slice is part of the soundness contract.
    pub fn from_commodities(
        g: &CapGraph,
        node_class: &[u32],
        commodities: &[Commodity],
        dist: DistanceOracle<'_>,
    ) -> Option<AggregatedInstance> {
        use std::collections::HashMap;
        let n = g.node_count();
        if node_class.len() != n {
            return None;
        }
        let classes = node_class
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0);
        // smallest member of each node class, u32::MAX = class unused
        let mut rep = vec![u32::MAX; classes];
        let mut size = vec![0u32; classes];
        for (v, &c) in node_class.iter().enumerate() {
            if rep[c as usize] == u32::MAX {
                rep[c as usize] = id32(v);
            }
            size[c as usize] += 1;
        }

        struct Bucket {
            first: usize,
            count: u32,
            demand_bits: u64,
            src_class: u32,
            dst_class: u32,
            hops: u32,
        }
        let mut slot: HashMap<(u32, u32, u32), usize> = HashMap::new();
        let mut buckets: Vec<Bucket> = Vec::new();
        for (j, c) in commodities.iter().enumerate() {
            if c.src >= n || c.dst >= n {
                return None;
            }
            let h = dist(c.src, c.dst)?;
            if h == 0 || h == u32::MAX {
                return None; // self-pair / unreachable: not aggregatable
            }
            let key = (node_class[c.src], node_class[c.dst], h);
            match slot.get(&key) {
                Some(&b) => {
                    if commodities[buckets[b].first].demand.to_bits() != c.demand.to_bits() {
                        return None; // orbit demands must be uniform
                    }
                    buckets[b].count += 1;
                }
                None => {
                    slot.insert(key, buckets.len());
                    buckets.push(Bucket {
                        first: j,
                        count: 1,
                        demand_bits: c.demand.to_bits(),
                        src_class: key.0,
                        dst_class: key.1,
                        hops: key.2,
                    });
                }
            }
        }

        // Closure verification: the expected orbit size from the source
        // representative's distance row. One scan of all nodes per distinct
        // source class.
        let mut row_cache: HashMap<u32, HashMap<(u32, u32), u32>> = HashMap::new();
        for b in &buckets {
            let row = row_cache.entry(b.src_class).or_insert_with(|| {
                let r = rep[b.src_class as usize] as usize;
                let mut cnt: HashMap<(u32, u32), u32> = HashMap::new();
                for (w, &wc) in node_class.iter().enumerate() {
                    if w == r {
                        continue;
                    }
                    if let Some(h) = dist(r, w) {
                        if h > 0 && h < u32::MAX {
                            *cnt.entry((wc, h)).or_insert(0) += 1;
                        }
                    }
                }
                cnt
            });
            let cnt = row.get(&(b.dst_class, b.hops)).copied().unwrap_or(0);
            let expected = u64::from(size[b.src_class as usize]) * u64::from(cnt);
            if u64::from(b.count) != expected {
                return None; // orbit not closed under the class structure
            }
        }

        let identity = buckets.iter().all(|b| b.count == 1);
        let model = if identity {
            ArcModel::identity(g)
        } else {
            ArcModel::from_node_classes(g, node_class)?
        };
        let agg: Vec<Commodity> = buckets
            .iter()
            .map(|b| {
                let c = commodities[b.first];
                Commodity {
                    src: c.src,
                    dst: c.dst,
                    demand: f64::from_bits(b.demand_bits) * f64::from(b.count),
                }
            })
            .collect();
        Some(AggregatedInstance {
            commodities: agg,
            node_class: node_class.to_vec(),
            model,
            original: commodities.len(),
            identity,
        })
    }

    /// Symbolic all-to-all aggregation: every ordered pair of *endpoint*
    /// nodes (`weights[v] > 0`) carries demand
    /// `weights[src] · weights[dst]`, without materializing the n² pair
    /// list — this is what makes k = 128 instances representable at all.
    ///
    /// Weights must be constant within each node class (checked bitwise);
    /// classes must come from verified automorphisms and `dist` must cover
    /// every (class representative, endpoint) pair, else `None`. Orbits
    /// are complete by construction, so no closure check is needed beyond
    /// the weight-uniformity test.
    pub fn all_to_all(
        g: &CapGraph,
        node_class: &[u32],
        weights: &[f64],
        dist: DistanceOracle<'_>,
    ) -> Option<AggregatedInstance> {
        use std::collections::HashMap;
        let n = g.node_count();
        if node_class.len() != n || weights.len() != n {
            return None;
        }
        let classes = node_class
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0);
        let mut rep = vec![u32::MAX; classes];
        let mut size = vec![0u32; classes];
        for (v, &c) in node_class.iter().enumerate() {
            if rep[c as usize] == u32::MAX {
                rep[c as usize] = id32(v);
            }
            size[c as usize] += 1;
            // endpoint-ness and weight must be class-invariant
            if weights[v].to_bits() != weights[rep[c as usize] as usize].to_bits() {
                return None;
            }
        }
        let endpoints: u64 = weights.iter().filter(|&&w| w > 0.0).count() as u64;
        let mut commodities: Vec<Commodity> = Vec::new();
        let mut counted: u64 = 0;
        let mut all_singleton = true;
        for c in 0..classes {
            let r = rep[c] as usize;
            if rep[c] == u32::MAX || !positive(weights[r]) {
                continue;
            }
            if size[c] > 1 {
                all_singleton = false;
            }
            let mut slot: HashMap<(u32, u32), usize> = HashMap::new();
            let base = commodities.len();
            let mut counts: Vec<u32> = Vec::new();
            for w in 0..n {
                if w == r || !positive(weights[w]) {
                    continue;
                }
                let h = dist(r, w)?;
                if h == 0 || h == u32::MAX {
                    return None;
                }
                match slot.get(&(node_class[w], h)) {
                    Some(&i) => counts[i] += 1,
                    None => {
                        slot.insert((node_class[w], h), counts.len());
                        counts.push(1);
                        commodities.push(Commodity {
                            src: r,
                            dst: w,
                            demand: weights[r] * weights[w],
                        });
                    }
                }
            }
            for (i, cm) in commodities.iter_mut().skip(base).enumerate() {
                let orbit = u64::from(size[c]) * u64::from(counts[i]);
                cm.demand *= orbit as f64;
                counted += orbit;
            }
        }
        // Every ordered endpoint pair must land in exactly one orbit.
        if counted != endpoints.saturating_mul(endpoints.saturating_sub(1)) {
            return None;
        }
        let identity = all_singleton;
        let original = usize::try_from(counted).ok()?;
        let model = if identity {
            ArcModel::identity(g)
        } else {
            ArcModel::from_node_classes(g, node_class)?
        };
        Some(AggregatedInstance {
            commodities,
            node_class: node_class.to_vec(),
            model,
            original,
            identity,
        })
    }
}

/// The sharded-parallel batched FPTAS: identical certification and budget
/// semantics to [`crate::fptas::max_concurrent_flow`], with each phase's
/// tree batches built in parallel rounds on the [`ft_graph::par`] pool.
/// λ is a deterministic function of `(graph, commodities, opts)` — the
/// worker count ([`ShardConfig::threads`] / `FT_THREADS`) never changes
/// the result, only the wall clock.
///
/// # Errors
/// Same contract as [`crate::fptas::max_concurrent_flow`].
pub fn max_concurrent_flow_sharded(
    g: &CapGraph,
    commodities: &[Commodity],
    opts: FptasOptions,
    cfg: &ShardConfig<'_>,
) -> Result<McfSolution, McfError> {
    let model = ArcModel::identity(g);
    solve_core(g, commodities, &model, None, opts, cfg, false)
}

/// Solves a symmetry-aggregated instance on its quotient arc-class model.
/// The reported λ, upper bound, and per-arc utilization are for the
/// *original* instance (the symmetric average of the quotient solution
/// spreads each class's flow equally over its arcs). Identity instances
/// (no collapse) are solved exactly as [`max_concurrent_flow_sharded`]
/// would solve the original commodity list.
///
/// # Errors
/// Same contract as [`crate::fptas::max_concurrent_flow`].
///
/// # Panics
/// When `g` is not the graph the instance was built from (arc/node counts
/// are cross-checked) — a programmer error, not an input condition.
pub fn max_concurrent_flow_aggregated(
    g: &CapGraph,
    inst: &AggregatedInstance,
    opts: FptasOptions,
    cfg: &ShardConfig<'_>,
) -> Result<McfSolution, McfError> {
    assert!(
        inst.model.class_of.len() == g.arc_count() && inst.node_class.len() == g.node_count(),
        "aggregated instance was built from a different graph"
    );
    let sobs = shard_obs();
    sobs.aggregated_runs.incr();
    sobs.aggregated_commodities
        .set(inst.commodities.len() as u64);
    if inst.identity {
        return max_concurrent_flow_sharded(g, &inst.commodities, opts, cfg);
    }
    solve_core(
        g,
        &inst.commodities,
        &inst.model,
        Some(&inst.node_class),
        opts,
        cfg,
        true,
    )
}

/// Class-granular cut bound, the quotient analogue of
/// [`node_cut_upper_bound`]: all demand sourced in a node class must cross
/// the arcs leaving that class (and symmetrically for sinks). Coincides
/// with the node cut when every class is a singleton.
fn class_cut_upper_bound(g: &CapGraph, commodities: &[Commodity], node_class: &[u32]) -> f64 {
    let classes = node_class
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut out_cap = vec![0.0f64; classes];
    let mut in_cap = vec![0.0f64; classes];
    for a in 0..g.arc_count() {
        let arc = g.arc(a);
        out_cap[node_class[arc.from] as usize] += arc.cap;
        in_cap[node_class[arc.to] as usize] += arc.cap;
    }
    let mut out_dem = vec![0.0f64; classes];
    let mut in_dem = vec![0.0f64; classes];
    for c in commodities {
        out_dem[node_class[c.src] as usize] += c.demand;
        in_dem[node_class[c.dst] as usize] += c.demand;
    }
    let mut best = f64::INFINITY;
    for c in 0..classes {
        if out_dem[c] > 0.0 {
            best = best.min(out_cap[c] / out_dem[c]);
        }
        if in_dem[c] > 0.0 {
            best = best.min(in_cap[c] / in_dem[c]);
        }
    }
    best
}

/// Outcome of the warm-oracle scan over the commodity list.
enum WarmScan {
    /// Every pair answered with a finite distance; carries
    /// `Σ_j demand_j · hops_j` for the distance-volume bound.
    Covered(f64),
    /// Some pair is unreachable: λ = 0, converged.
    Disconnected,
    /// Oracle missing or incomplete — fall back to SSSP pre-checks.
    Unknown,
}

fn warm_scan(commodities: &[Commodity], warm: Option<DistanceOracle<'_>>) -> WarmScan {
    let Some(dist) = warm else {
        return WarmScan::Unknown;
    };
    let mut volume = 0.0f64;
    for c in commodities {
        match dist(c.src, c.dst) {
            Some(u32::MAX) => return WarmScan::Disconnected,
            Some(h) if h > 0 => volume += c.demand * f64::from(h),
            _ => return WarmScan::Unknown,
        }
    }
    WarmScan::Covered(volume)
}

/// Parallel counterpart of the batched solver's reachability pre-check:
/// one unit-length SSSP per tree batch, fanned over the worker pool.
fn all_reachable_par(
    g: &CapGraph,
    commodities: &[Commodity],
    groups: &[Group],
    rev: &ReverseIndex,
    workers: usize,
) -> bool {
    let ones = vec![1.0f64; g.arc_count()];
    let ok = ft_graph::par::map_init_with(workers, groups, DijkstraScratch::new, |scratch, grp| {
        if grp.reversed {
            g.shortest_path_tree_to_with(rev, grp.root, &ones, scratch);
        } else {
            g.shortest_path_tree_with(grp.root, &ones, scratch);
        }
        grp.members.iter().all(|&j| {
            let far = if grp.reversed {
                commodities[j].src
            } else {
                commodities[j].dst
            };
            scratch.reached(far)
        })
    });
    ok.iter().all(|&b| b)
}

/// Shared frame of the sharded and aggregated solvers: validation,
/// reachability, warm bounds, adaptive demand scaling around
/// [`run_once_sharded`] — the sharded mirror of `fptas::solve`.
fn solve_core(
    g: &CapGraph,
    commodities: &[Commodity],
    model: &ArcModel,
    node_class: Option<&[u32]>,
    opts: FptasOptions,
    cfg: &ShardConfig<'_>,
    aggregated: bool,
) -> Result<McfSolution, McfError> {
    if !(opts.epsilon > 0.0 && opts.epsilon < 0.5) {
        return Err(McfError::InvalidEpsilon {
            epsilon: opts.epsilon,
        });
    }
    let m = g.arc_count();
    if commodities.is_empty() {
        return Ok(McfSolution {
            lambda: f64::INFINITY,
            upper_bound: f64::INFINITY,
            phases: 0,
            steps: 0,
            budget_exhausted: false,
            utilization: vec![0.0; m],
        });
    }
    for c in commodities {
        if c.src == c.dst || c.demand <= 0.0 {
            return Err(McfError::InvalidCommodity {
                src: c.src,
                dst: c.dst,
                demand: c.demand,
            });
        }
    }
    let groups = group_commodities(commodities);
    let rev = g.reverse_index();
    let workers = cfg.workers();
    let mut ub = match node_class {
        Some(nc) => class_cut_upper_bound(g, commodities, nc),
        None => node_cut_upper_bound(g, commodities),
    };

    // Warm-start scan: O(1) reachability per commodity plus the
    // distance-volume bound when the oracle covers the instance; parallel
    // unit-length SSSPs otherwise. Disconnection is a converged λ = 0.
    match warm_scan(commodities, cfg.warm) {
        WarmScan::Disconnected => {
            return Ok(McfSolution {
                lambda: 0.0,
                upper_bound: ub,
                phases: 0,
                steps: 0,
                budget_exhausted: false,
                utilization: vec![0.0; m],
            });
        }
        WarmScan::Covered(volume) => {
            if volume > 0.0 {
                let total_cap: f64 = model.class_cap.iter().sum();
                ub = ub.min(total_cap / volume);
            }
        }
        WarmScan::Unknown => {
            if !all_reachable_par(g, commodities, &groups, &rev, workers) {
                return Ok(McfSolution {
                    lambda: 0.0,
                    upper_bound: ub,
                    phases: 0,
                    steps: 0,
                    budget_exhausted: false,
                    utilization: vec![0.0; m],
                });
            }
        }
    }

    // Adaptive demand scaling, exactly as in fptas::solve.
    let mut scale = if ub.is_finite() && ub > 0.0 {
        1.0 / ub
    } else {
        1.0
    };
    let mut last = run_once_sharded(
        g,
        commodities,
        &groups,
        &rev,
        model,
        scale,
        ub,
        opts,
        workers,
        aggregated,
    );
    for _ in 0..4 {
        let scaled_lambda = last.lambda * scale;
        if (0.2..=5.0).contains(&scaled_lambda) {
            break;
        }
        if last.lambda <= 0.0 {
            scale *= 16.0;
        } else {
            scale /= scaled_lambda;
        }
        last = run_once_sharded(
            g,
            commodities,
            &groups,
            &rev,
            model,
            scale,
            ub,
            opts,
            workers,
            aggregated,
        );
    }
    last.upper_bound = last.upper_bound.min(ub);
    Ok(last)
}

/// Mutable state of one sharded Garg–Könemann run. The lengths, flows, and
/// dual live on *arc classes* (which under the identity model are exactly
/// the arcs); `arc_len` is the per-arc materialization the Dijkstra trees
/// read, refreshed from dirty classes between rounds.
struct ShardState<'a> {
    g: &'a CapGraph,
    model: &'a ArcModel,
    commodities: &'a [Commodity],
    eps: f64,
    scale: f64,
    max_steps: Option<usize>,
    workers: usize,
    /// Current per-class length.
    class_len: Vec<f64>,
    /// Per-arc view of `class_len` for the tree builds.
    arc_len: Vec<f64>,
    /// Accumulated (capacity-violating) per-class flow.
    class_flow: Vec<f64>,
    /// Classes whose `arc_len` entries are stale (non-identity model only).
    dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    /// Accumulated routed amount per commodity (scaled units).
    routed: Vec<f64>,
    dual: f64,
    dual_ub: f64,
    primal_floor: Option<(f64, Vec<f64>)>,
    best_hist: Vec<f64>,
    phases: usize,
    steps: usize,
    budget_exhausted: bool,
    pushes: u64,
    deferrals: u64,
    rounds: u64,
}

impl ShardState<'_> {
    /// Certified λ of the scaled instance: worst-served commodity over
    /// worst class overload (see `fptas::RunState::lambda_scaled`; classes
    /// overload exactly when their member arcs do, since symmetric flow
    /// spreads a class equally).
    fn lambda_scaled(&self) -> f64 {
        let mu = self
            .class_flow
            .iter()
            .zip(&self.model.class_cap)
            .map(|(&f, &cap)| f / cap)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let served = self
            .commodities
            .iter()
            .enumerate()
            .map(|(j, c)| self.routed[j] / (c.demand / self.scale))
            .fold(f64::INFINITY, f64::min);
        if served.is_finite() {
            served / mu
        } else {
            0.0
        }
    }

    /// See `fptas::RunState::gap_rescue_armed`.
    fn gap_rescue_armed(&self) -> bool {
        self.max_steps
            .is_some_and(|max| self.steps.saturating_mul(2) >= max)
    }

    /// See `fptas::RunState::note_phase_lambda`.
    fn note_phase_lambda(&mut self) {
        let best = self
            .lambda_scaled()
            .max(self.best_hist.last().copied().unwrap_or(0.0));
        self.best_hist.push(best);
    }

    /// See `fptas::RunState::gap_converged` — identical contract+plateau
    /// rule on the class-granular dual.
    fn gap_converged(&mut self, group_alpha: &[f64]) -> bool {
        let alpha: f64 = group_alpha.iter().sum();
        if alpha <= 0.0 {
            return false;
        }
        self.dual_ub = self.dual_ub.min(self.dual / alpha);
        let lambda_scaled = self.lambda_scaled();
        if std::env::var_os("FT_FPTAS_TRACE").is_some() {
            eprintln!(
                "shard phase={} steps={} rounds={} dual={:.4} lam={:.5} ub={:.5} ratio={:.3}",
                self.phases,
                self.steps,
                self.rounds,
                self.dual,
                lambda_scaled,
                self.dual_ub,
                lambda_scaled / self.dual_ub
            );
        }
        let contract =
            lambda_scaled > 0.0 && lambda_scaled >= (1.0 - 3.0 * self.eps) * self.dual_ub;
        let n = self.best_hist.len();
        // `n >= 3` is checked first, so both indices are in bounds
        let plateau = n >= 3 && self.best_hist[n - 1] <= 1.01 * self.best_hist[n - 3];
        contract && plateau
    }

    /// See `fptas::RunState::primal_reset`.
    fn primal_reset(&mut self) {
        self.primal_floor = Some((self.lambda_scaled(), self.class_flow.clone()));
        self.class_flow.iter_mut().for_each(|f| *f = 0.0);
        self.routed.iter_mut().for_each(|r| *r = 0.0);
    }

    /// Re-materializes `arc_len` for classes touched since the last round
    /// (no-op under the identity model, which updates `arc_len` on push).
    fn refresh_dirty(&mut self) {
        for &o in &self.dirty {
            let o = o as usize;
            let len = self.class_len[o];
            // bounds: class_start has classes + 1 entries, o < classes
            let (lo, hi) = (self.model.class_start[o], self.model.class_start[o + 1]);
            for &a in &self.model.class_arcs[lo as usize..hi as usize] {
                self.arc_len[a as usize] = len;
            }
            self.dirty_mark[o] = false;
        }
        self.dirty.clear();
    }
}

/// One tree's worth of path proposals from a round build.
struct MemberPlan {
    /// Commodity index.
    j: u32,
    /// Far endpoint's distance at tree-build time — the Fleischer band's
    /// lower bound on the live shortest-path distance.
    tree_dist: f64,
    /// Arc indices of the tree path (root-ward order).
    arcs: Vec<u32>,
}

struct GroupPlan {
    members: Vec<MemberPlan>,
    /// A member's far endpoint was unreachable — cannot happen after the
    /// pre-check; aborts the run defensively like the batched loop.
    lost: bool,
}

/// Builds one shortest-path tree per pending group, in parallel, against a
/// single immutable length snapshot; returns the path proposals in group
/// order. Worker-count independent: every worker reads the same snapshot
/// and results are merged in input order.
#[allow(clippy::too_many_arguments)]
fn build_round(
    g: &CapGraph,
    groups: &[Group],
    commodities: &[Commodity],
    round: &[u32],
    arc_len: &[f64],
    rem: &[f64],
    rev: &ReverseIndex,
    workers: usize,
) -> Vec<GroupPlan> {
    ft_graph::par::map_init_with(workers, round, DijkstraScratch::new, |scratch, &gi| {
        let grp = &groups[gi as usize];
        if grp.reversed {
            g.shortest_path_tree_to_with(rev, grp.root, arc_len, scratch);
        } else {
            g.shortest_path_tree_with(grp.root, arc_len, scratch);
        }
        let mut members = Vec::new();
        for &j in &grp.members {
            if !positive(rem[j]) {
                continue;
            }
            let far = if grp.reversed {
                commodities[j].src
            } else {
                commodities[j].dst
            };
            let Some(tree_dist) = scratch.distance(far) else {
                return GroupPlan {
                    members,
                    lost: true,
                };
            };
            let mut arcs = Vec::new();
            if grp.reversed {
                arcs.extend(g.tree_walk_to(scratch, far).map(id32));
            } else {
                arcs.extend(g.tree_walk(scratch, far).map(id32));
            }
            members.push(MemberPlan {
                j: id32(j),
                tree_dist,
                arcs,
            });
        }
        GroupPlan {
            members,
            lost: false,
        }
    })
}

/// Phase-end α pass for the budget-rescue dual bound, one tree per group,
/// fanned over the worker pool (see the batched loop's α pass — this is
/// the same computation against the same length array, just parallel).
fn build_alpha(
    g: &CapGraph,
    groups: &[Group],
    commodities: &[Commodity],
    scale: f64,
    arc_len: &[f64],
    rev: &ReverseIndex,
    workers: usize,
) -> Vec<f64> {
    ft_graph::par::map_init_with(workers, groups, DijkstraScratch::new, |scratch, grp| {
        if grp.reversed {
            g.shortest_path_tree_to_with(rev, grp.root, arc_len, scratch);
        } else {
            g.shortest_path_tree_with(grp.root, arc_len, scratch);
        }
        grp.members
            .iter()
            .map(|&j| {
                let far = if grp.reversed {
                    commodities[j].src
                } else {
                    commodities[j].dst
                };
                let d = commodities[j].demand / scale;
                d * scratch.distance(far).unwrap_or(0.0)
            })
            .sum()
    })
}

/// One sharded Garg–Könemann run on demands divided by `scale` — the
/// sharded mirror of `fptas::run_once`, with the batched routing loop
/// replaced by [`route_sharded`] and lengths/flows kept per arc class.
#[allow(clippy::too_many_arguments)]
fn run_once_sharded(
    g: &CapGraph,
    commodities: &[Commodity],
    groups: &[Group],
    rev: &ReverseIndex,
    model: &ArcModel,
    scale: f64,
    ub_caller: f64,
    opts: FptasOptions,
    workers: usize,
    aggregated: bool,
) -> McfSolution {
    let eps = opts.epsilon;
    let m = g.arc_count();
    let classes = model.classes();
    // δ from the element count of the packing instance — the classes, not
    // the arcs, are the capacitated elements of the quotient scheme.
    let delta = (classes as f64 / (1.0 - eps)).powf(-1.0 / eps);
    let seed_ub = if ub_caller.is_finite() && ub_caller > 0.0 {
        ub_caller * scale
    } else {
        f64::INFINITY
    };
    let class_len: Vec<f64> = model.class_cap.iter().map(|&cap| delta / cap).collect();
    let arc_len: Vec<f64> = model
        .class_of
        .iter()
        .map(|&o| class_len[o as usize])
        .collect();
    let mut st = ShardState {
        g,
        model,
        commodities,
        eps,
        scale,
        max_steps: opts.max_steps,
        workers,
        dual: class_len
            .iter()
            .zip(&model.class_cap)
            .map(|(&l, &cap)| cap * l)
            .sum(),
        class_len,
        arc_len,
        class_flow: vec![0.0f64; classes],
        dirty: Vec::new(),
        dirty_mark: vec![false; if model.identity { 0 } else { classes }],
        routed: vec![0.0; commodities.len()],
        dual_ub: seed_ub,
        primal_floor: None,
        best_hist: Vec::new(),
        phases: 0,
        steps: 0,
        budget_exhausted: false,
        pushes: 0,
        deferrals: 0,
        rounds: 0,
    };

    let mut run_span = ft_obs::span!(
        "fptas.shard_run",
        commodities = commodities.len(),
        groups = groups.len(),
        classes = classes,
        workers = workers,
        aggregated = aggregated,
        scale = scale,
    );

    route_sharded(&mut st, groups, rev);

    let mut lambda_scaled = st.lambda_scaled();
    let mut best_flow = &st.class_flow;
    if let Some((floor, flow)) = &st.primal_floor {
        if *floor > lambda_scaled {
            lambda_scaled = *floor;
            best_flow = flow;
        }
    }
    let mu = best_flow
        .iter()
        .zip(&model.class_cap)
        .map(|(&f, &cap)| f / cap)
        .fold(0.0f64, f64::max)
        .max(1.0);
    // Per-arc utilization of the symmetric solution: a class's flow spread
    // equally over its arcs loads each at class_flow/class_cap.
    let utilization: Vec<f64> = (0..m)
        .map(|a| {
            let o = model.class_of[a] as usize;
            best_flow[o] / model.class_cap[o] / mu
        })
        .collect();

    let c = fptas::obs();
    c.runs.incr();
    c.phases.add(st.phases as u64);
    c.trees.add(st.steps as u64);
    c.pushes.add(st.pushes);
    c.deferrals.add(st.deferrals);
    if st.gap_rescue_armed() {
        c.rescue_armed.incr();
    }
    if st.budget_exhausted {
        c.budget_exhausted.incr();
    }
    shard_obs().rounds.add(st.rounds);
    if let Some(s) = run_span.as_mut() {
        s.field("lambda", lambda_scaled / scale);
        s.field("phases", st.phases);
        s.field("steps", st.steps);
        s.field("rounds", st.rounds);
        s.field("pushes", st.pushes);
        s.field("deferrals", st.deferrals);
        s.field("budget_exhausted", st.budget_exhausted);
    }

    McfSolution {
        lambda: lambda_scaled / scale,
        upper_bound: st.dual_ub / scale,
        phases: st.phases,
        steps: st.steps,
        budget_exhausted: st.budget_exhausted,
        utilization,
    }
}

/// The round-based routing loop. Each phase repeatedly (a) builds one tree
/// per still-pending group in parallel against the current length snapshot
/// ([`build_round`]), then (b) applies the proposals sequentially in group
/// order, routing each member while its path's *live* length stays within
/// `(1 + ε)` of its snapshot tree distance. The first proposal of a round
/// is applied against exactly its build lengths, so every round pushes at
/// least once — termination and certification mirror the batched loop,
/// including the budget-rescue α pass (also parallel) and the primal
/// reset.
fn route_sharded(st: &mut ShardState<'_>, groups: &[Group], rev: &ReverseIndex) {
    let one_plus_eps = 1.0 + st.eps;
    let mut rem: Vec<f64> = vec![0.0; st.commodities.len()];
    let mut group_alpha = vec![0.0f64; groups.len()];
    let mut pending: Vec<u32> = Vec::with_capacity(groups.len());

    'outer: while st.dual < 1.0 {
        let mut phase_span =
            ft_obs::span!("fptas.shard_phase", phase = st.phases, workers = st.workers);
        let (steps0, pushes0, deferrals0, rounds0) = (st.steps, st.pushes, st.deferrals, st.rounds);
        for (j, c) in st.commodities.iter().enumerate() {
            rem[j] = c.demand / st.scale;
        }
        pending.clear();
        pending.extend((0..groups.len()).map(id32));
        while !pending.is_empty() {
            let take = match st.max_steps {
                Some(max) => {
                    let allowed = max.saturating_sub(st.steps);
                    if allowed == 0 {
                        st.budget_exhausted = true;
                        break 'outer;
                    }
                    pending.len().min(allowed)
                }
                None => pending.len(),
            };
            st.steps += take;
            st.rounds += 1;
            let round = &pending[..take];
            let plans = build_round(
                st.g,
                groups,
                st.commodities,
                round,
                &st.arc_len,
                &rem,
                rev,
                st.workers,
            );
            for plan in &plans {
                for mp in &plan.members {
                    let j = mp.j as usize;
                    'member: while rem[j] > 0.0 {
                        // Live path length under the authoritative class
                        // lengths (the arc view may be mid-round stale).
                        let mut path_len = 0.0f64;
                        for &a in &mp.arcs {
                            path_len += st.class_len[st.model.class_of[a as usize] as usize];
                        }
                        if path_len > one_plus_eps * mp.tree_dist {
                            st.deferrals += 1;
                            break 'member;
                        }
                        // Element bottleneck: a class occurring h times on
                        // the path saturates at cap/h per unit of path flow.
                        let mut bottleneck = f64::INFINITY;
                        for &a in &mp.arcs {
                            let o = st.model.class_of[a as usize];
                            let mut h = 0u32;
                            for &b in &mp.arcs {
                                if st.model.class_of[b as usize] == o {
                                    h += 1;
                                }
                            }
                            bottleneck =
                                bottleneck.min(st.model.class_cap[o as usize] / f64::from(h));
                        }
                        let f = rem[j].min(bottleneck);
                        rem[j] -= f;
                        st.routed[j] += f;
                        st.pushes += 1;
                        for &a in &mp.arcs {
                            let o = st.model.class_of[a as usize] as usize;
                            let cap = st.model.class_cap[o];
                            st.class_flow[o] += f;
                            let old = st.class_len[o];
                            let new = old * (1.0 + st.eps * f / cap);
                            st.class_len[o] = new;
                            st.dual += cap * (new - old);
                            if st.model.identity {
                                st.arc_len[a as usize] = new;
                            } else if !st.dirty_mark[o] {
                                st.dirty_mark[o] = true;
                                st.dirty.push(id32(o));
                            }
                        }
                        if st.dual >= 1.0 {
                            break 'outer;
                        }
                    }
                }
                if plan.lost {
                    break 'outer; // cannot happen after the pre-check
                }
            }
            st.refresh_dirty();
            pending.clear();
            pending.extend(
                (0..groups.len())
                    .filter(|&gi| groups[gi].members.iter().any(|&j| rem[j] > 0.0))
                    .map(id32),
            );
        }
        st.phases += 1;
        st.note_phase_lambda();
        if let Some(s) = phase_span.as_mut() {
            s.field("trees", (st.steps - steps0) as u64);
            s.field("rounds", st.rounds - rounds0);
            s.field("pushes", st.pushes - pushes0);
            s.field("deferrals", st.deferrals - deferrals0);
            s.field("dual", st.dual);
            s.field("lambda_scaled", st.best_hist.last().copied().unwrap_or(0.0));
            s.field("rescue_armed", st.gap_rescue_armed());
        }
        if st.gap_rescue_armed() {
            let take = match st.max_steps {
                Some(max) => {
                    let allowed = max.saturating_sub(st.steps);
                    if allowed == 0 {
                        st.budget_exhausted = true;
                        break 'outer;
                    }
                    groups.len().min(allowed)
                }
                None => groups.len(),
            };
            st.steps += take;
            let alpha = build_alpha(
                st.g,
                &groups[..take],
                st.commodities,
                st.scale,
                &st.arc_len,
                rev,
                st.workers,
            );
            group_alpha[..take].copy_from_slice(&alpha);
            if take < groups.len() {
                // partial α pass on a tripping budget, as in the batched
                // loop: the stale tail only weakens the bound
                st.budget_exhausted = true;
                break 'outer;
            }
            let converged = st.gap_converged(&group_alpha);
            if let Some(s) = phase_span.as_mut() {
                s.field("alpha", group_alpha.iter().sum::<f64>());
                s.field("dual_ub", st.dual_ub);
                s.field("converged_by_gap", converged);
            }
            if converged {
                break;
            }
        }
        if st.phases == 2 && st.primal_floor.is_none() && st.dual < 0.25 {
            st.primal_reset();
            if let Some(s) = phase_span.as_mut() {
                s.field("primal_reset", true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_concurrent_flow_exact;
    use crate::fptas::max_concurrent_flow;
    use ft_graph::Graph;

    fn unit(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    /// Unit-length hop distances for oracle-backed tests.
    fn hop_table(g: &CapGraph) -> Vec<Vec<u32>> {
        let ones = vec![1.0f64; g.arc_count()];
        let mut scratch = DijkstraScratch::new();
        (0..g.node_count())
            .map(|s| {
                g.shortest_path_tree_with(s, &ones, &mut scratch);
                (0..g.node_count())
                    .map(|t| match scratch.distance(t) {
                        Some(d) => id32(d as usize),
                        None => u32::MAX,
                    })
                    .collect()
            })
            .collect()
    }

    fn all_to_all(n: usize) -> Vec<Commodity> {
        let mut cs = Vec::new();
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0,
                    });
                }
            }
        }
        cs
    }

    fn ring4() -> CapGraph {
        unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn sharded_matches_exact_on_fixed_instances() {
        let eps = 0.05;
        let cases: Vec<(CapGraph, Vec<Commodity>)> = vec![
            (
                unit(3, &[(0, 1), (1, 2)]),
                vec![Commodity {
                    src: 0,
                    dst: 2,
                    demand: 1.0,
                }],
            ),
            (
                unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]),
                vec![Commodity {
                    src: 0,
                    dst: 3,
                    demand: 1.0,
                }],
            ),
            (
                unit(4, &[(0, 2), (1, 2), (2, 3)]),
                vec![
                    Commodity {
                        src: 0,
                        dst: 3,
                        demand: 1.0,
                    },
                    Commodity {
                        src: 1,
                        dst: 3,
                        demand: 1.0,
                    },
                ],
            ),
            (ring4(), all_to_all(4)),
        ];
        for (g, cs) in &cases {
            let exact = max_concurrent_flow_exact(g, cs).unwrap();
            let sol = max_concurrent_flow_sharded(
                g,
                cs,
                FptasOptions::with_epsilon(eps),
                &ShardConfig::default(),
            )
            .unwrap();
            assert!(sol.lambda <= exact + 1e-6, "{} > {}", sol.lambda, exact);
            assert!(
                sol.lambda >= (1.0 - 3.0 * eps) * exact - 1e-9,
                "{} below guarantee for {}",
                sol.lambda,
                exact
            );
            assert!(!sol.budget_exhausted);
            for &u in &sol.utilization {
                assert!(u <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn sharded_bit_identical_across_worker_counts() {
        let g = ring4();
        let cs = all_to_all(4);
        let opts = FptasOptions {
            epsilon: 0.08,
            max_steps: Some(500),
        };
        let base =
            max_concurrent_flow_sharded(&g, &cs, opts, &ShardConfig::with_threads(1)).unwrap();
        for threads in [2, 4, 7] {
            let sol =
                max_concurrent_flow_sharded(&g, &cs, opts, &ShardConfig::with_threads(threads))
                    .unwrap();
            assert_eq!(
                sol.lambda.to_bits(),
                base.lambda.to_bits(),
                "λ differs at {threads} workers"
            );
            assert_eq!(sol.steps, base.steps);
            assert_eq!(sol.phases, base.phases);
            let same_util = sol
                .utilization
                .iter()
                .zip(&base.utilization)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_util, "utilization differs at {threads} workers");
        }
    }

    #[test]
    fn sharded_within_band_of_batched() {
        let eps = 0.05;
        let g = unit(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            },
            Commodity {
                src: 4,
                dst: 1,
                demand: 0.5,
            },
        ];
        let opts = FptasOptions::with_epsilon(eps);
        let b = max_concurrent_flow(&g, &cs, opts).unwrap().lambda;
        let s = max_concurrent_flow_sharded(&g, &cs, opts, &ShardConfig::default())
            .unwrap()
            .lambda;
        assert!(
            s >= (1.0 - 3.0 * eps) * b - 1e-9 && b >= (1.0 - 3.0 * eps) * s - 1e-9,
            "sharded {s} vs batched {b} outside the ε band"
        );
    }

    #[test]
    fn aggregated_identity_bitwise_matches_sharded() {
        // All-singleton classes: the aggregation must degrade to the exact
        // original instance and produce a bit-identical λ.
        let g = unit(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let cs = all_to_all(5);
        let hops = hop_table(&g);
        let dist = |a: usize, b: usize| Some(hops[a][b]);
        let node_class: Vec<u32> = (0..5).map(id32).collect();
        let inst = AggregatedInstance::from_commodities(&g, &node_class, &cs, &dist).unwrap();
        assert!(inst.is_identity());
        assert_eq!(inst.commodities(), &cs[..]);
        assert_eq!(inst.original_commodities(), cs.len());
        let opts = FptasOptions::with_epsilon(0.08);
        let agg = max_concurrent_flow_aggregated(&g, &inst, opts, &ShardConfig::default()).unwrap();
        let full = max_concurrent_flow_sharded(&g, &cs, opts, &ShardConfig::default()).unwrap();
        assert_eq!(agg.lambda.to_bits(), full.lambda.to_bits());
        assert_eq!(agg.steps, full.steps);
    }

    #[test]
    fn aggregated_ring_collapses_and_matches_full() {
        // ring4 has two automorphism classes {0,2} and {1,3}; the 12
        // all-to-all commodities collapse to 4 orbits.
        let g = ring4();
        let cs = all_to_all(4);
        let hops = hop_table(&g);
        let dist = |a: usize, b: usize| Some(hops[a][b]);
        let node_class = [0u32, 1, 0, 1];
        let inst = AggregatedInstance::from_commodities(&g, &node_class, &cs, &dist).unwrap();
        assert!(!inst.is_identity());
        assert_eq!(inst.commodities().len(), 4);
        assert_eq!(inst.original_commodities(), 12);
        let eps = 0.05;
        let opts = FptasOptions::with_epsilon(eps);
        let agg = max_concurrent_flow_aggregated(&g, &inst, opts, &ShardConfig::default()).unwrap();
        let exact = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!(agg.lambda <= exact + 1e-6, "{} > {}", agg.lambda, exact);
        assert!(
            agg.lambda >= (1.0 - 3.0 * eps) * exact - 1e-9,
            "aggregated {} below guarantee for exact {}",
            agg.lambda,
            exact
        );
        for &u in &agg.utilization {
            assert!(u <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn all_to_all_builder_matches_explicit_aggregation() {
        let g = ring4();
        let cs = all_to_all(4);
        let hops = hop_table(&g);
        let dist = |a: usize, b: usize| Some(hops[a][b]);
        let node_class = [0u32, 1, 0, 1];
        let explicit = AggregatedInstance::from_commodities(&g, &node_class, &cs, &dist).unwrap();
        let weights = vec![1.0f64; 4];
        let symbolic = AggregatedInstance::all_to_all(&g, &node_class, &weights, &dist).unwrap();
        assert_eq!(symbolic.commodities(), explicit.commodities());
        assert_eq!(symbolic.original_commodities(), 12);
        assert!(!symbolic.is_identity());
    }

    #[test]
    fn non_closed_commodity_set_rejected() {
        let g = ring4();
        let mut cs = all_to_all(4);
        cs.pop(); // breaks orbit closure
        let hops = hop_table(&g);
        let dist = |a: usize, b: usize| Some(hops[a][b]);
        assert!(AggregatedInstance::from_commodities(&g, &[0, 1, 0, 1], &cs, &dist).is_none());
    }

    #[test]
    fn non_uniform_demand_rejected() {
        let g = ring4();
        let mut cs = all_to_all(4);
        cs[0].demand = 2.0;
        let hops = hop_table(&g);
        let dist = |a: usize, b: usize| Some(hops[a][b]);
        assert!(AggregatedInstance::from_commodities(&g, &[0, 1, 0, 1], &cs, &dist).is_none());
    }

    #[test]
    fn incomplete_oracle_rejected() {
        let g = ring4();
        let cs = all_to_all(4);
        let dist = |_: usize, _: usize| None;
        assert!(AggregatedInstance::from_commodities(&g, &[0, 1, 0, 1], &cs, &dist).is_none());
    }

    #[test]
    fn warm_oracle_detects_disconnection() {
        let g = unit(3, &[(0, 1)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let hops = hop_table(&g);
        let dist = move |a: usize, b: usize| Some(hops[a][b]);
        let cfg = ShardConfig {
            threads: 1,
            warm: Some(&dist),
        };
        let sol = max_concurrent_flow_sharded(&g, &cs, FptasOptions::default(), &cfg).unwrap();
        assert_eq!(sol.lambda, 0.0);
        assert!(!sol.budget_exhausted);
    }

    #[test]
    fn warm_oracle_matches_cold_solve() {
        // The oracle tightens the upper-bound seed, which may legitimately
        // change the schedule — but the certified λ must stay in band.
        let eps = 0.05;
        let g = ring4();
        let cs = all_to_all(4);
        let hops = hop_table(&g);
        let dist = move |a: usize, b: usize| Some(hops[a][b]);
        let opts = FptasOptions::with_epsilon(eps);
        let cold = max_concurrent_flow_sharded(&g, &cs, opts, &ShardConfig::default())
            .unwrap()
            .lambda;
        let cfg = ShardConfig {
            threads: 0,
            warm: Some(&dist),
        };
        let warm = max_concurrent_flow_sharded(&g, &cs, opts, &cfg)
            .unwrap()
            .lambda;
        assert!(
            warm >= (1.0 - 3.0 * eps) * cold - 1e-9 && cold >= (1.0 - 3.0 * eps) * warm - 1e-9,
            "warm {warm} vs cold {cold} outside the ε band"
        );
    }

    #[test]
    fn bad_epsilon_rejected() {
        let g = unit(2, &[(0, 1)]);
        let cs = [Commodity {
            src: 0,
            dst: 1,
            demand: 1.0,
        }];
        let err = max_concurrent_flow_sharded(
            &g,
            &cs,
            FptasOptions::with_epsilon(0.7),
            &ShardConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, McfError::InvalidEpsilon { .. }));
    }

    #[test]
    fn budget_respected_and_reported() {
        let g = ring4();
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let sol = max_concurrent_flow_sharded(
            &g,
            &cs,
            FptasOptions {
                epsilon: 0.01,
                max_steps: Some(5),
            },
            &ShardConfig::default(),
        )
        .unwrap();
        assert!(sol.steps <= 5 * 5, "rescaling runs are each capped");
        assert!(sol.budget_exhausted);
    }
}
