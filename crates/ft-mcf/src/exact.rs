//! Exact maximum concurrent flow via the edge-based LP.
//!
//! The formulation is the standard one the paper cites (Leighton–Rao):
//!
//! ```text
//! maximize   λ
//! subject to Σ_j f_j(a)                  ≤ cap(a)      for every arc a
//!            Σ_out f_j − Σ_in f_j        = 0           for every commodity j,
//!                                                      node v ∉ {s_j, t_j}
//!            Σ_out f_j − Σ_in f_j        = λ·d_j       at v = s_j
//!            f, λ ≥ 0
//! ```
//!
//! Variable count is `1 + K·A` (K commodities, A arcs), so this is for
//! small instances — tests, cross-validation of the FPTAS, and the tiny
//! topologies in the examples. Large sweeps use [`crate::fptas`].

use crate::digraph::CapGraph;
use crate::{Commodity, McfError};
use ft_lp::{LpError, LpOutcome, LpProblem, Var};

/// Solves max concurrent flow exactly. Returns the optimal λ.
///
/// Returns 0.0 when any commodity's destination is unreachable (the LP is
/// feasible only at λ = 0) and when `commodities` is empty... the latter is
/// reported as `f64::INFINITY` since every λ is feasible.
///
/// # Errors
/// [`McfError::InvalidCommodity`] if a commodity has `src == dst` or
/// non-positive demand (filter with [`crate::aggregate_commodities`]);
/// [`McfError::Solver`] on an internal LP inconsistency.
pub fn max_concurrent_flow_exact(g: &CapGraph, commodities: &[Commodity]) -> Result<f64, McfError> {
    if commodities.is_empty() {
        return Ok(f64::INFINITY);
    }
    let a_cnt = g.arc_count();
    let n = g.node_count();
    let mut lp = LpProblem::new();
    let lambda = lp.add_var(1.0);
    // flow variables f[j][a]
    let mut f: Vec<Vec<Var>> = Vec::with_capacity(commodities.len());
    for c in commodities {
        if c.src == c.dst || c.demand <= 0.0 {
            return Err(McfError::InvalidCommodity {
                src: c.src,
                dst: c.dst,
                demand: c.demand,
            });
        }
        f.push((0..a_cnt).map(|_| lp.add_var(0.0)).collect());
    }
    // capacity per arc
    for ai in 0..a_cnt {
        let terms: Vec<(Var, f64)> = f.iter().map(|fj| (fj[ai], 1.0)).collect();
        lp.add_le(&terms, g.arc(ai).cap);
    }
    // conservation
    for (j, c) in commodities.iter().enumerate() {
        for v in 0..n {
            if v == c.dst {
                continue; // implied by the others
            }
            let mut terms: Vec<(Var, f64)> = Vec::new();
            for &ai in g.out_arcs(v) {
                terms.push((f[j][ai as usize], 1.0));
            }
            for (ai, fj) in f[j].iter().enumerate().take(a_cnt) {
                if g.arc(ai).to == v {
                    terms.push((*fj, -1.0));
                }
            }
            if v == c.src {
                terms.push((lambda, -c.demand));
            }
            lp.add_eq(&terms, 0.0);
        }
    }
    match lp.solve() {
        LpOutcome::Optimal(s) => Ok(s.value(lambda)),
        // λ = 0, f = 0 is always feasible, so this is a solver defect.
        LpOutcome::Infeasible => Err(McfError::Solver(LpError::Infeasible)),
        LpOutcome::Unbounded => Ok(f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::Graph;

    fn unit_capgraph(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    #[test]
    fn single_commodity_path() {
        // path of 3 nodes, one commodity demand 1 → λ = 1 (one unit path)
        let g = unit_capgraph(3, &[(0, 1), (1, 2)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 1.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn single_commodity_matches_maxflow() {
        // diamond: two disjoint 2-hop paths → max flow 2 for demand 1
        let g = unit_capgraph(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let cs = [Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        }];
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 2.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn triangle_two_commodities() {
        // triangle, commodities (0→1) and (0→2) demand 1 each.
        // Direct paths give λ = 1; detours add capacity:
        // cut at node 0 has out-capacity 2 and total demand 2λ ⇒ λ ≤ 1.
        let g = unit_capgraph(3, &[(0, 1), (1, 2), (0, 2)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 1,
                demand: 1.0,
            },
            Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            },
        ];
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 1.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn opposing_commodities_share_nothing() {
        // full duplex: 0→1 and 1→0 both get the full unit
        let g = unit_capgraph(2, &[(0, 1)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 1,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 0,
                demand: 1.0,
            },
        ];
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 1.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn bottleneck_shared_fairly() {
        // two commodities share one unit edge → λ = 0.5
        let g = unit_capgraph(4, &[(0, 2), (1, 2), (2, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 3,
                demand: 1.0,
            },
        ];
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 0.5).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn demand_scaling_inversely_scales_lambda() {
        let g = unit_capgraph(3, &[(0, 1), (1, 2)]);
        let l1 = max_concurrent_flow_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
        )
        .unwrap();
        let l2 = max_concurrent_flow_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 2.0,
            }],
        )
        .unwrap();
        assert!((l1 - 2.0 * l2).abs() < 1e-6);
    }

    #[test]
    fn unreachable_commodity_zero() {
        let g = unit_capgraph(3, &[(0, 1)]);
        let l = max_concurrent_flow_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
        )
        .unwrap();
        assert!(l.abs() < 1e-9);
    }

    #[test]
    fn empty_commodities_unbounded() {
        let g = unit_capgraph(2, &[(0, 1)]);
        assert!(max_concurrent_flow_exact(&g, &[]).unwrap().is_infinite());
    }

    #[test]
    fn invalid_commodity_rejected() {
        let g = unit_capgraph(2, &[(0, 1)]);
        let err = max_concurrent_flow_exact(
            &g,
            &[Commodity {
                src: 1,
                dst: 1,
                demand: 1.0,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            McfError::InvalidCommodity { src: 1, dst: 1, .. }
        ));
        let err = max_concurrent_flow_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 0.0,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            McfError::InvalidCommodity { src: 0, dst: 1, .. }
        ));
    }

    #[test]
    fn ring_all_to_all() {
        // 4-cycle, all ordered pairs demand 1.
        // By symmetry each of the 8 arcs carries the same load; total
        // demand-hops per λ: 8 pairs at distance 1 or 2 (4 at d=1 via one
        // hop, 4 opposite pairs at d=2) → min hops = 4·1 + 2·2·2 = 12
        // arc-units per λ (ordered pairs: 8 adjacent at 1 hop, 4 opposite
        // at 2 hops → 8 + 8 = 16 arc-units); capacity total = 8 ⇒
        // λ ≤ 0.5. Achievable by symmetry.
        let g = unit_capgraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cs = Vec::new();
        for s in 0..4 {
            for t in 0..4 {
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0,
                    });
                }
            }
        }
        let l = max_concurrent_flow_exact(&g, &cs).unwrap();
        assert!((l - 0.5).abs() < 1e-6, "λ = {l}");
    }
}
