//! Maximum concurrent multi-commodity flow — the paper's throughput
//! methodology (§3.1).
//!
//! The paper measures topology throughput by assuming optimal routing and
//! solving the *maximum concurrent multi-commodity flow* problem
//! \[Leighton & Rao, J.ACM'99\]: maximize λ such that every commodity `j`
//! can simultaneously route `λ·demand_j` through the network without
//! exceeding any link capacity. All switch–switch links have unit capacity
//! per direction; server links are uncapacitated (the paper relaxes server
//! bandwidth to expose switch-level capacity), which this crate models by
//! aggregating server-pair demands to their attachment switches before
//! solving.
//!
//! Two solvers are provided:
//!
//! * [`exact::max_concurrent_flow_exact`] — the edge-based LP solved with
//!   `ft-lp`'s simplex. Exact, used for small instances and as the oracle
//!   that validates the FPTAS.
//! * [`fptas::max_concurrent_flow`] — the Garg–Könemann fully polynomial
//!   approximation scheme with Fleischer-style **source batching**: one
//!   shortest-path tree per (source, step) serves every commodity sharing
//!   that source, so the Dijkstra count per phase is O(#sources) instead of
//!   O(#commodities). Scales past the paper's k = 32 networks (11 200
//!   commodities). The returned λ is *certified primal feasible* (we
//!   rescale the accumulated flow by its worst link overload), so it is a
//!   true lower bound regardless of floating-point drift, and the theory
//!   guarantees it is within `(1 − 3ε)` of optimal at convergence; a
//!   tripped step budget is reported via
//!   [`fptas::McfSolution::budget_exhausted`], never as a silent λ = 0.
//!   [`fptas::max_concurrent_flow_reference`] retains the per-commodity
//!   routing loop as the validation oracle.
//! * [`paths::max_concurrent_flow_on_paths`] — the concurrent-flow LP
//!   restricted to explicit path sets, quantifying what k-shortest-paths
//!   routing (§2.6) loses relative to the paper's optimal-routing
//!   assumption.
//! * [`bounds`] — cheap cut-based upper bounds used for demand pre-scaling
//!   and sanity checks.

// Unit tests are exempt from the panic-free policy (see DESIGN.md,
// "Static analysis & error-handling policy").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod digraph;
pub mod exact;
pub mod fptas;
pub mod paths;
pub mod shard;

pub use bounds::node_cut_upper_bound;
pub use digraph::{CapGraph, DijkstraScratch};
pub use exact::max_concurrent_flow_exact;
pub use fptas::{max_concurrent_flow, max_concurrent_flow_reference, FptasOptions, McfSolution};
pub use paths::{k_shortest_arc_paths, max_concurrent_flow_on_paths, ArcPath};
pub use shard::{
    max_concurrent_flow_aggregated, max_concurrent_flow_sharded, AggregatedInstance,
    DistanceOracle, ShardConfig,
};

/// Errors reported by the concurrent-flow solvers.
///
/// All solver entry points validate their inputs and return this instead of
/// asserting, so callers feeding computed demand matrices (e.g. `ft-metrics`
/// throughput sweeps) can surface bad instances without aborting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum McfError {
    /// A commodity had `src == dst` or non-positive demand; such triples
    /// must be filtered out first (see [`aggregate_commodities`]).
    InvalidCommodity {
        /// Source switch index of the offending commodity.
        src: usize,
        /// Destination switch index of the offending commodity.
        dst: usize,
        /// Its demand.
        demand: f64,
    },
    /// The FPTAS approximation parameter was outside `(0, 0.5)`.
    InvalidEpsilon {
        /// The rejected ε.
        epsilon: f64,
    },
    /// `max_concurrent_flow_on_paths` was given a path-set list whose
    /// length does not match the commodity list.
    PathSetMismatch {
        /// Number of commodities.
        commodities: usize,
        /// Number of path sets supplied.
        path_sets: usize,
    },
    /// The underlying LP reported an outcome the MCF formulation rules out
    /// (the zero flow is always feasible) — an internal solver
    /// inconsistency, typically from numerically hostile capacities.
    Solver(ft_lp::LpError),
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            McfError::InvalidCommodity { src, dst, demand } => write!(
                f,
                "invalid commodity {src} -> {dst} (demand {demand}): endpoints must \
                 differ and demand must be positive"
            ),
            McfError::InvalidEpsilon { epsilon } => {
                write!(f, "FPTAS epsilon {epsilon} outside (0, 0.5)")
            }
            McfError::PathSetMismatch {
                commodities,
                path_sets,
            } => write!(
                f,
                "{path_sets} path sets supplied for {commodities} commodities"
            ),
            McfError::Solver(e) => write!(f, "LP solver inconsistency: {e}"),
        }
    }
}

impl std::error::Error for McfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McfError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ft_lp::LpError> for McfError {
    fn from(e: ft_lp::LpError) -> Self {
        McfError::Solver(e)
    }
}

/// A commodity: `demand` units of flow from switch `src` to switch `dst`
/// (indices into the switch graph the [`CapGraph`] was built from).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Commodity {
    /// Source switch index.
    pub src: usize,
    /// Destination switch index.
    pub dst: usize,
    /// Demand (λ multiplies this).
    pub demand: f64,
}

/// Aggregates raw `(src, dst, demand)` triples into one commodity per
/// ordered switch pair, dropping `src == dst` pairs (they use no network
/// capacity once server links are uncapacitated — the paper's relaxation).
pub fn aggregate_commodities(
    triples: impl IntoIterator<Item = (usize, usize, f64)>,
) -> Vec<Commodity> {
    use std::collections::BTreeMap;
    // BTreeMap: per-pair sums still accumulate in input order, and the
    // (src, dst)-sorted iteration below gives the deterministic commodity
    // order the solver needs — no post-sort, no hash-seed dependence
    let mut acc: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (s, t, d) in triples {
        if s != t && d > 0.0 {
            *acc.entry((s, t)).or_insert(0.0) += d;
        }
    }
    acc.into_iter()
        .map(|((src, dst), demand)| Commodity { src, dst, demand })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_merges_and_drops_self() {
        let cs = aggregate_commodities(vec![
            (0, 1, 1.0),
            (0, 1, 2.0),
            (1, 0, 1.0),
            (2, 2, 5.0),
            (0, 2, 0.0),
        ]);
        assert_eq!(
            cs,
            vec![
                Commodity {
                    src: 0,
                    dst: 1,
                    demand: 3.0
                },
                Commodity {
                    src: 1,
                    dst: 0,
                    demand: 1.0
                },
            ]
        );
    }

    #[test]
    fn aggregate_empty() {
        assert!(aggregate_commodities(Vec::<(usize, usize, f64)>::new()).is_empty());
    }
}
