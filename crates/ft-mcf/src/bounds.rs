//! Cheap upper bounds on the concurrent-flow rate λ.
//!
//! Used for two purposes:
//!
//! * **demand pre-scaling** in the FPTAS — Garg–Könemann's phase count is
//!   proportional to the optimal λ of the *scaled* instance, so we scale
//!   demands such that λ ≈ 1 before running. With Fleischer source
//!   batching each phase costs O(#sources) shortest-path trees (plus
//!   staleness recomputes), so a bad pre-scale now wastes whole trees, not
//!   just single paths — the cut bound below is what keeps the step budget
//!   honest;
//! * **sanity checks** — a certified-feasible FPTAS λ must never exceed
//!   these bounds (and when [`crate::McfSolution::budget_exhausted`] is
//!   set, the gap between λ and these bounds quantifies how far the
//!   truncated run may be from convergence).

use crate::digraph::CapGraph;
use crate::Commodity;
use ft_graph::FlowNetwork;

/// The node-cut upper bound: for every node `v`, all flow sourced at `v`
/// must leave through `v`'s outgoing capacity and all flow destined to `v`
/// must enter through its incoming capacity, so
///
/// ```text
/// λ ≤ min_v min( out_cap(v) / Σ_{j: src_j = v} d_j ,
///                in_cap(v)  / Σ_{j: dst_j = v} d_j )
/// ```
///
/// Returns `f64::INFINITY` when no commodity constrains any node.
pub fn node_cut_upper_bound(g: &CapGraph, commodities: &[Commodity]) -> f64 {
    let n = g.node_count();
    let mut out_dem = vec![0.0f64; n];
    let mut in_dem = vec![0.0f64; n];
    for c in commodities {
        out_dem[c.src] += c.demand;
        in_dem[c.dst] += c.demand;
    }
    let mut in_cap = vec![0.0f64; n];
    for a in g.arcs() {
        in_cap[a.to] += a.cap;
    }
    let mut bound = f64::INFINITY;
    for v in 0..n {
        if out_dem[v] > 0.0 {
            bound = bound.min(g.out_capacity(v) / out_dem[v]);
        }
        if in_dem[v] > 0.0 {
            bound = bound.min(in_cap[v] / in_dem[v]);
        }
    }
    bound
}

/// Exact λ for a *single* commodity: `maxflow(src, dst) / demand`, via
/// Dinic. An independent oracle for tests and a tight bound when one
/// commodity dominates.
pub fn single_commodity_exact(g: &CapGraph, c: &Commodity) -> f64 {
    let mut fn_ = FlowNetwork::new(g.node_count());
    for a in g.arcs() {
        fn_.add_edge(a.from, a.to, a.cap);
    }
    fn_.max_flow(c.src, c.dst) / c.demand
}

/// Upper bound via per-commodity max-flow: λ ≤ min_j maxflow(s_j, t_j)/d_j.
/// Tighter than the node cut on sparse cuts, at the cost of one Dinic run
/// per commodity — use on small instances only.
pub fn per_commodity_maxflow_bound(g: &CapGraph, commodities: &[Commodity]) -> f64 {
    commodities
        .iter()
        .map(|c| single_commodity_exact(g, c))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::Graph;

    fn unit(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    #[test]
    fn node_cut_hotspot() {
        // star center 0 with 3 leaves; broadcasts to all leaves
        let g = unit(4, &[(0, 1), (0, 2), (0, 3)]);
        let cs: Vec<Commodity> = (1..4)
            .map(|t| Commodity {
                src: 0,
                dst: t,
                demand: 1.0,
            })
            .collect();
        // out_cap(0) = 3, total demand 3 → λ ≤ 1
        assert!((node_cut_upper_bound(&g, &cs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_cut_incast() {
        let g = unit(4, &[(0, 1), (0, 2), (0, 3)]);
        let cs: Vec<Commodity> = (1..4)
            .map(|s| Commodity {
                src: s,
                dst: 0,
                demand: 2.0,
            })
            .collect();
        // in_cap(0) = 3, total demand 6 → λ ≤ 0.5
        assert!((node_cut_upper_bound(&g, &cs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_cut_no_commodities_infinite() {
        let g = unit(2, &[(0, 1)]);
        assert!(node_cut_upper_bound(&g, &[]).is_infinite());
    }

    #[test]
    fn single_commodity_diamond() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let c = Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        };
        assert!((single_commodity_exact(&g, &c) - 2.0).abs() < 1e-9);
        let c2 = Commodity {
            src: 0,
            dst: 3,
            demand: 4.0,
        };
        assert!((single_commodity_exact(&g, &c2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn maxflow_bound_tighter_than_node_cut() {
        // path 0-1-2: commodity 0→2 demand 1.
        // node cut at 0: out_cap 1 → bound 1; maxflow bound also 1.
        let g = unit(3, &[(0, 1), (1, 2)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let nc = node_cut_upper_bound(&g, &cs);
        let mf = per_commodity_maxflow_bound(&g, &cs);
        assert!(mf <= nc + 1e-12);
        assert!((mf - 1.0).abs() < 1e-9);
    }
}
