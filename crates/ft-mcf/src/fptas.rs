//! The Garg–Könemann FPTAS for maximum concurrent multi-commodity flow,
//! with Fleischer-style **source batching**.
//!
//! # Algorithm
//!
//! Every arc starts with length `δ/cap(a)` where
//! `δ = (m/(1−ε))^(−1/ε)`. The algorithm proceeds in *phases*; in each
//! phase every commodity routes its full demand along (approximately)
//! shortest paths under the current lengths, sending at most the path's
//! bottleneck capacity per push. After pushing `f` over arc `a`, the arc's
//! length is multiplied by `(1 + ε·f/cap(a))`. The run stops when the dual
//! value `D(l) = Σ cap(a)·l(a)` reaches 1.
//!
//! # Source batching (Fleischer)
//!
//! Garg–Könemann as literally stated computes one shortest path per push —
//! `O(#commodities)` Dijkstras per phase, which is what made k = 32
//! instances (11 200 commodities) exhaust any step budget inside phase 0.
//! Fleischer's refinement groups commodities by *source*: one Dijkstra
//! builds the full shortest-path **tree** from a source, and every
//! commodity sharing that source routes along its tree path for as long as
//! the path's *current* total length stays within a `(1 + ε)` factor of
//! the destination's distance at tree-build time (arc lengths only grow,
//! so that distance lower-bounds the current shortest path). Only when a
//! needed path drifts past that band is the tree recomputed. The
//! shortest-path count per
//! phase drops from `O(#commodities)` to `O(#sources)` plus a number of
//! recomputations bounded by the total arc-length growth — independent of
//! the number of commodities. Routing along `(1 + ε)`-approximate shortest
//! paths is exactly the setting of Fleischer's analysis and preserves the
//! `(1 − 3ε)` guarantee.
//!
//! The raw accumulated flow violates capacities by at most a
//! `log_{1+ε}(1/δ)` factor; dividing by the *actual worst overload*
//! `μ = max_a flow(a)/cap(a)` yields a certified feasible solution:
//!
//! ```text
//! λ = (min_j routed_j / d_j) / μ
//! ```
//!
//! This certificate is what [`max_concurrent_flow`] reports — it is a true
//! lower bound on the optimum independent of floating-point behaviour, and
//! the Fleischer–Garg–Könemann analysis guarantees it is ≥ (1 − 3ε) · OPT
//! at convergence.
//!
//! # Budget semantics
//!
//! A step budget ([`FptasOptions::max_steps`]) bounds the number of
//! shortest-path computations (source trees in the batched solver,
//! per-commodity paths in [`max_concurrent_flow_reference`]). Once half of
//! a finite budget is spent, the batched solver arms a *budget-rescue*
//! termination: a per-phase primal–dual gap check that stops the run as
//! soon as the certified λ provably meets the `(1 − 3ε)` guarantee against
//! a dual upper bound — converged by certificate, before the budget trips.
//! Only if even that fails does the budget trip, and the run then reports
//! the certified λ of the flow accumulated *so far* with
//! [`McfSolution::budget_exhausted`] set: the value is still a true
//! feasible lower bound, but the `(1 − 3ε)` optimality guarantee no longer
//! applies. Callers must check the flag instead of treating λ as
//! converged. Unbudgeted runs always go to the textbook `D(l) ≥ 1`.
//!
//! # Demand pre-scaling
//!
//! The phase count grows with the optimal λ of the instance as given, so
//! demands are internally rescaled (using the node-cut upper bound, then
//! adaptively) to put λ near 1. The reported λ is mapped back to the
//! caller's demand units.
//!
//! # Determinism
//!
//! Commodity groups are formed in first-appearance order of their source
//! and scanned in input order within a group; Dijkstra tie-breaking is the
//! node-index ordering of [`CapGraph::shortest_path_with`]. The result is a
//! pure function of `(graph, commodities, options)` — no thread count or
//! scheduling dependence.

use crate::bounds::node_cut_upper_bound;
use crate::digraph::{CapGraph, DijkstraScratch, ReverseIndex};
use crate::{Commodity, McfError};
use std::sync::OnceLock;

/// Cached handles into the global ft-obs registry. The hot loops count
/// into plain `u64` fields of [`RunState`] (zero atomic traffic inside a
/// phase); totals are flushed here once per [`run_once`] call, so the
/// solver's exposition lines cost O(1) atomics per run.
pub(crate) struct McfCounters {
    pub(crate) runs: &'static ft_obs::Counter,
    pub(crate) phases: &'static ft_obs::Counter,
    pub(crate) trees: &'static ft_obs::Counter,
    pub(crate) pushes: &'static ft_obs::Counter,
    pub(crate) deferrals: &'static ft_obs::Counter,
    pub(crate) rescue_armed: &'static ft_obs::Counter,
    pub(crate) budget_exhausted: &'static ft_obs::Counter,
}

pub(crate) fn obs() -> &'static McfCounters {
    static CELL: OnceLock<McfCounters> = OnceLock::new();
    CELL.get_or_init(|| McfCounters {
        runs: ft_obs::registry::counter("ft_mcf_runs_total"),
        phases: ft_obs::registry::counter("ft_mcf_phases_total"),
        trees: ft_obs::registry::counter("ft_mcf_trees_total"),
        pushes: ft_obs::registry::counter("ft_mcf_pushes_total"),
        deferrals: ft_obs::registry::counter("ft_mcf_stale_deferrals_total"),
        rescue_armed: ft_obs::registry::counter("ft_mcf_rescue_armed_total"),
        budget_exhausted: ft_obs::registry::counter("ft_mcf_budget_exhausted_total"),
    })
}

/// Tuning knobs for the FPTAS.
#[derive(Clone, Copy, Debug)]
pub struct FptasOptions {
    /// Approximation parameter ε ∈ (0, 0.5). The certified λ is
    /// ≥ (1 − 3ε)·OPT. Smaller ε costs ~1/ε² more work.
    pub epsilon: f64,
    /// Safety valve: abort after this many shortest-path computations
    /// (source trees in the batched solver, per-commodity paths in the
    /// reference solver). `None` = unlimited. A tripped budget is reported
    /// via [`McfSolution::budget_exhausted`], never as a silent λ = 0.
    pub max_steps: Option<usize>,
}

impl Default for FptasOptions {
    fn default() -> Self {
        FptasOptions {
            epsilon: 0.1,
            max_steps: None,
        }
    }
}

impl FptasOptions {
    /// Options with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        FptasOptions {
            epsilon,
            ..Default::default()
        }
    }
}

/// Result of an FPTAS run.
#[derive(Clone, Debug)]
pub struct McfSolution {
    /// Certified-feasible concurrent flow rate — always a true lower bound
    /// on OPT; additionally ≥ (1 − 3ε)·OPT when
    /// [`McfSolution::budget_exhausted`] is `false`.
    pub lambda: f64,
    /// Certified upper bound on OPT: the tighter of the node cut and the
    /// best dual bound `D(l)/α(l)` observed during the run (∞ if neither
    /// constrains).
    pub upper_bound: f64,
    /// Completed phases.
    pub phases: usize,
    /// Total shortest-path computations (source trees when batched).
    pub steps: usize,
    /// `true` when [`FptasOptions::max_steps`] tripped before the dual
    /// termination condition: `lambda` is then only the certified lower
    /// bound of the partial run, not a converged (1 − 3ε)-approximation.
    pub budget_exhausted: bool,
    /// Per-arc utilization of the certified solution (flow/cap ∈ [0, 1]).
    pub utilization: Vec<f64>,
}

/// Solves max concurrent flow approximately with the source-batched
/// (Fleischer) routing loop; see module docs.
///
/// Returns λ = ∞ for an empty commodity set and λ = 0 when any commodity
/// is disconnected.
///
/// # Errors
/// [`McfError::InvalidEpsilon`] when `opts.epsilon` is outside `(0, 0.5)`;
/// [`McfError::InvalidCommodity`] when a commodity has `src == dst` or
/// non-positive demand (filter with [`crate::aggregate_commodities`]).
pub fn max_concurrent_flow(
    g: &CapGraph,
    commodities: &[Commodity],
    opts: FptasOptions,
) -> Result<McfSolution, McfError> {
    solve(g, commodities, opts, true)
}

/// The original per-commodity Garg–Könemann routing loop: one shortest
/// path per push, `O(#commodities)` Dijkstras per phase.
///
/// Retained as the validation oracle for the batched solver — property
/// tests pin `max_concurrent_flow` against this within the ε guarantee —
/// and as the baseline in benchmark comparisons. Production callers want
/// [`max_concurrent_flow`].
///
/// # Errors
/// Same contract as [`max_concurrent_flow`].
pub fn max_concurrent_flow_reference(
    g: &CapGraph,
    commodities: &[Commodity],
    opts: FptasOptions,
) -> Result<McfSolution, McfError> {
    solve(g, commodities, opts, false)
}

/// One batch of commodities served by a single shortest-path tree: a
/// *source* tree rooted at a shared `src` (`reversed == false`) or a
/// *sink* tree rooted at a shared `dst` (`reversed == true`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Group {
    /// Tree root: the shared source, or the shared destination when
    /// `reversed`.
    pub(crate) root: usize,
    /// Whether the tree is sink-rooted
    /// ([`CapGraph::shortest_path_tree_to_with`]).
    pub(crate) reversed: bool,
    /// Commodity indices, in input order.
    pub(crate) members: Vec<usize>,
}

/// Partitions commodity indices into tree batches, each commodity joining
/// whichever endpoint is shared by *more* commodities overall: hot-spot
/// matrices (the paper's Figure 7 workload) have thousands of commodities
/// converging on a handful of destinations, and batching those under sink
/// trees cuts trees-per-phase from O(#sources) to O(#hot spots). Ties go
/// to the source side. Groups are formed in first-appearance order and
/// members stay in input order — the fixed ordering is part of the
/// determinism contract (DESIGN.md §10): the routing schedule, and with it
/// every float accumulation, depends only on the input commodity order.
pub(crate) fn group_commodities(commodities: &[Commodity]) -> Vec<Group> {
    use std::collections::HashMap;
    let mut src_count: HashMap<usize, usize> = HashMap::new();
    let mut dst_count: HashMap<usize, usize> = HashMap::new();
    for c in commodities {
        *src_count.entry(c.src).or_insert(0) += 1;
        *dst_count.entry(c.dst).or_insert(0) += 1;
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut slot: HashMap<(usize, bool), usize> = HashMap::new();
    for (j, c) in commodities.iter().enumerate() {
        let reversed = dst_count[&c.dst] > src_count[&c.src];
        let key = if reversed {
            (c.dst, true)
        } else {
            (c.src, false)
        };
        match slot.get(&key) {
            // index came from `groups.len()` below — always in bounds
            Some(&i) => groups[i].members.push(j),
            None => {
                slot.insert(key, groups.len());
                groups.push(Group {
                    root: key.0,
                    reversed,
                    members: vec![j],
                });
            }
        }
    }
    groups
}

/// Reachability pre-check: one unit-length SSSP per tree batch (not per
/// commodity — commodities sharing a tree share the check). Returns
/// `false` when any commodity's far endpoint is unreachable, which pins
/// λ to 0.
fn all_reachable(
    g: &CapGraph,
    commodities: &[Commodity],
    groups: &[Group],
    rev: &ReverseIndex,
    scratch: &mut DijkstraScratch,
) -> bool {
    let ones = vec![1.0f64; g.arc_count()];
    for grp in groups {
        if grp.reversed {
            g.shortest_path_tree_to_with(rev, grp.root, &ones, scratch);
        } else {
            g.shortest_path_tree_with(grp.root, &ones, scratch);
        }
        for &j in &grp.members {
            let far = if grp.reversed {
                commodities[j].src
            } else {
                commodities[j].dst
            };
            if !scratch.reached(far) {
                return false;
            }
        }
    }
    true
}

/// Shared frame of both solvers: validation, reachability pre-check,
/// adaptive demand scaling around [`run_once`].
fn solve(
    g: &CapGraph,
    commodities: &[Commodity],
    opts: FptasOptions,
    batched: bool,
) -> Result<McfSolution, McfError> {
    if !(opts.epsilon > 0.0 && opts.epsilon < 0.5) {
        return Err(McfError::InvalidEpsilon {
            epsilon: opts.epsilon,
        });
    }
    let m = g.arc_count();
    if commodities.is_empty() {
        return Ok(McfSolution {
            lambda: f64::INFINITY,
            upper_bound: f64::INFINITY,
            phases: 0,
            steps: 0,
            budget_exhausted: false,
            utilization: vec![0.0; m],
        });
    }
    for c in commodities {
        if c.src == c.dst || c.demand <= 0.0 {
            return Err(McfError::InvalidCommodity {
                src: c.src,
                dst: c.dst,
                demand: c.demand,
            });
        }
    }
    let groups = group_commodities(commodities);
    let rev = g.reverse_index();
    let ub = node_cut_upper_bound(g, commodities);

    // One Dijkstra scratch for the whole solve: the pre-check below, plus
    // every tree/path computation of every run_once call, reuse its buffers
    // (zero per-call allocation after the first run warms it up).
    let mut scratch = DijkstraScratch::new();

    // A disconnected commodity pins λ to 0 — that is a converged answer,
    // not a budget artifact.
    if !all_reachable(g, commodities, &groups, &rev, &mut scratch) {
        return Ok(McfSolution {
            lambda: 0.0,
            upper_bound: ub,
            phases: 0,
            steps: 0,
            budget_exhausted: false,
            utilization: vec![0.0; m],
        });
    }

    // Adaptive demand scaling. The solver runs on demands `d/scale`; the
    // scaled instance's optimum is `OPT·scale`, so `scale = 1/OPT_est`
    // puts it near 1. The node cut gives OPT_est = ub; refine adaptively
    // from the certified result when the cut is loose.
    let mut scale = if ub.is_finite() && ub > 0.0 {
        1.0 / ub
    } else {
        1.0
    };
    let mut last = run_once(
        g,
        commodities,
        &groups,
        &rev,
        scale,
        ub,
        opts,
        &mut scratch,
        batched,
    );
    for _ in 0..4 {
        let scaled_lambda = last.lambda * scale; // λ' of the scaled instance
        if (0.2..=5.0).contains(&scaled_lambda) {
            break;
        }
        if last.lambda <= 0.0 {
            // nothing routed: the instance was scaled far too hard (λ' ≫ 1
            // exhausts the dual before every commodity is served once).
            // Loosen aggressively and retry.
            scale *= 16.0;
        } else {
            scale /= scaled_lambda; // new scale ≈ 1/OPT
        }
        last = run_once(
            g,
            commodities,
            &groups,
            &rev,
            scale,
            ub,
            opts,
            &mut scratch,
            batched,
        );
    }
    last.upper_bound = last.upper_bound.min(ub);
    Ok(last)
}

/// Mutable state of one Garg–Könemann run, shared by both routing loops.
struct RunState<'a> {
    g: &'a CapGraph,
    commodities: &'a [Commodity],
    eps: f64,
    scale: f64,
    max_steps: Option<usize>,
    /// Current per-arc length l(a).
    length: Vec<f64>,
    /// Accumulated (capacity-violating) per-arc flow.
    flow: Vec<f64>,
    /// Accumulated routed amount per commodity (scaled units).
    routed: Vec<f64>,
    /// Dual value D(l) = Σ cap(a)·l(a); termination at ≥ 1.
    dual: f64,
    /// Best upper bound on the scaled optimum: seeded with the node-cut
    /// bound in scaled units, then tightened by `D(l)/α(l)` each phase.
    dual_ub: f64,
    /// Certificate snapshot from before the primal reset:
    /// `(λ_scaled, flow)`. The final answer never drops below it even if
    /// the budget trips right after the reset.
    primal_floor: Option<(f64, Vec<f64>)>,
    /// Best certified λ_scaled seen at each phase end (non-decreasing),
    /// for the plateau half of the gap termination rule.
    best_hist: Vec<f64>,
    phases: usize,
    steps: usize,
    budget_exhausted: bool,
    /// Successful path pushes (observability only; flushed to the global
    /// registry once per run, never read by the algorithm).
    pushes: u64,
    /// Tree-path staleness deferrals in the batched loop (observability
    /// only).
    deferrals: u64,
}

impl RunState<'_> {
    /// The certified concurrent flow rate of the *scaled* instance for the
    /// currently accumulated flow: worst-served commodity over worst
    /// overload, exactly the value [`max_concurrent_flow`] reports (before
    /// mapping back to caller units).
    fn lambda_scaled(&self) -> f64 {
        let mu = (0..self.g.arc_count())
            .map(|a| self.flow[a] / self.g.arc(a).cap)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let served = self
            .commodities
            .iter()
            .enumerate()
            .map(|(j, c)| self.routed[j] / (c.demand / self.scale))
            .fold(f64::INFINITY, f64::min);
        if served.is_finite() {
            served / mu
        } else {
            0.0
        }
    }

    /// Whether the budget-rescue gap termination is armed: only once a
    /// finite step budget is at least half spent. Unbudgeted runs — and
    /// budgeted runs still in their first half — terminate at the textbook
    /// `D(l) ≥ 1` and keep the fully converged λ. The gap certificate
    /// exists to rescue a *certified* answer before the budget trips, not
    /// to trade λ quality for speed when steps are not scarce: stopping at
    /// the (1 − 3ε) contract can leave λ tens of percent below the
    /// converged value, which downstream consumers comparing λ across
    /// instances (the hybrid-zone experiment, the ft-sim cross-check)
    /// would misread as a real throughput difference.
    fn gap_rescue_armed(&self) -> bool {
        self.max_steps
            .is_some_and(|max| self.steps.saturating_mul(2) >= max)
    }

    /// Phase-end bookkeeping for the plateau half of the gap test: record
    /// the best certified λ seen so far (non-decreasing). Runs every
    /// phase — armed or not — so the history is already warm when the
    /// budget rescue arms and the rescue can fire on its first check.
    fn note_phase_lambda(&mut self) {
        let best = self
            .lambda_scaled()
            .max(self.best_hist.last().copied().unwrap_or(0.0));
        self.best_hist.push(best);
    }

    /// Phase-end primal–dual gap test (batched loop only, armed by
    /// [`Self::gap_rescue_armed`]). Records the dual upper bound
    /// `D(l)/α(l)` from this phase's trees, then reports converged when
    /// **both** hold:
    ///
    /// * *contract*: the certified primal `λ = (min_j routed_j/d_j)/μ` is
    ///   ≥ (1 − 3ε) of the best upper bound seen — from this point on,
    ///   more phases can only improve the constant, never the guarantee;
    /// * *plateau*: the best certified λ grew < 1% over the last two
    ///   phases — the primal has stopped paying for further phases.
    ///
    /// The contract half alone would stop at the weakest permissible
    /// answer; the plateau half alone could stop before the guarantee
    /// holds. Together they rescue a near-converged λ from a run that
    /// would otherwise trip its budget before `D(l) ≥ 1`.
    fn gap_converged(&mut self, group_alpha: &[f64]) -> bool {
        let alpha: f64 = group_alpha.iter().sum();
        if alpha <= 0.0 {
            return false;
        }
        self.dual_ub = self.dual_ub.min(self.dual / alpha);
        let lambda_scaled = self.lambda_scaled();
        if std::env::var_os("FT_FPTAS_TRACE").is_some() {
            eprintln!(
                "phase={} steps={} dual={:.4} lam={:.5} ub={:.5} ratio={:.3}",
                self.phases,
                self.steps,
                self.dual,
                lambda_scaled,
                self.dual_ub,
                lambda_scaled / self.dual_ub
            );
        }
        let contract =
            lambda_scaled > 0.0 && lambda_scaled >= (1.0 - 3.0 * self.eps) * self.dual_ub;
        let n = self.best_hist.len();
        // `n >= 3` is checked first, so both indices are in bounds
        let plateau = n >= 3 && self.best_hist[n - 1] <= 1.01 * self.best_hist[n - 3];
        contract && plateau
    }

    /// One-time primal reset (batched loop only): the first couple of
    /// phases route under near-uniform lengths and pile flow onto paths a
    /// converged run would avoid; that early flow inflates the overload μ
    /// and drags the certified λ for the rest of the run. Once the lengths
    /// have absorbed the congestion profile (and the dual is still far from
    /// terminating), dropping the accumulated flow — lengths stay — lets
    /// the certificate re-accumulate purely on informed paths. The
    /// pre-reset certificate is kept as a floor, so this is monotone: the
    /// reported λ can only improve.
    fn primal_reset(&mut self) {
        self.primal_floor = Some((self.lambda_scaled(), self.flow.clone()));
        self.flow.iter_mut().for_each(|f| *f = 0.0);
        self.routed.iter_mut().for_each(|r| *r = 0.0);
    }
}

/// One Garg–Könemann run on demands divided by `scale` (so that the scaled
/// optimum is ≈ 1 when `scale` ≈ 1/OPT). `ub_caller` is the node-cut upper
/// bound in *caller* units; `ub_caller · scale` bounds the scaled optimum
/// and seeds the dual upper bound, so the gap test can fire as soon as the
/// primal is good instead of waiting for `D(l)/α(l)` to tighten from ∞.
/// The returned λ is already mapped back to the caller's demand units.
#[allow(clippy::too_many_arguments)]
fn run_once(
    g: &CapGraph,
    commodities: &[Commodity],
    groups: &[Group],
    rev: &ReverseIndex,
    scale: f64,
    ub_caller: f64,
    opts: FptasOptions,
    scratch: &mut DijkstraScratch,
    batched: bool,
) -> McfSolution {
    let eps = opts.epsilon;
    let m = g.arc_count();
    let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);
    let seed_ub = if ub_caller.is_finite() && ub_caller > 0.0 {
        ub_caller * scale
    } else {
        f64::INFINITY
    };
    let mut st = RunState {
        g,
        commodities,
        eps,
        scale,
        max_steps: opts.max_steps,
        length: (0..m).map(|a| delta / g.arc(a).cap).collect(),
        flow: vec![0.0f64; m],
        routed: vec![0.0; commodities.len()],
        dual: 0.0,
        dual_ub: seed_ub,
        primal_floor: None,
        best_hist: Vec::new(),
        phases: 0,
        steps: 0,
        budget_exhausted: false,
        pushes: 0,
        deferrals: 0,
    };
    st.dual = (0..m).map(|a| g.arc(a).cap * st.length[a]).sum();

    let mut run_span = ft_obs::span!(
        "fptas.run",
        commodities = commodities.len(),
        groups = groups.len(),
        batched = batched,
        scale = scale,
    );

    if batched {
        route_batched(&mut st, groups, rev, scratch);
    } else {
        route_reference(&mut st, scratch);
    }

    // Certified feasible λ: scale the accumulated flow down by its worst
    // overload, take the worst-served commodity. If the pre-reset snapshot
    // certifies more (budget tripped shortly after the primal reset), fall
    // back to it — λ is then monotone in the work done.
    let mut lambda_scaled = st.lambda_scaled();
    let mut best_flow = &st.flow;
    if let Some((floor, flow)) = &st.primal_floor {
        if *floor > lambda_scaled {
            lambda_scaled = *floor;
            best_flow = flow;
        }
    }
    let mu = (0..m)
        .map(|a| best_flow[a] / g.arc(a).cap)
        .fold(0.0f64, f64::max)
        .max(1.0); // if nothing overloads, the flow is already feasible
    let utilization: Vec<f64> = (0..m).map(|a| best_flow[a] / g.arc(a).cap / mu).collect();

    // Flush the run's plain-field tallies into the global registry (O(1)
    // atomics per run) and close the run span with its outcome.
    let c = obs();
    c.runs.incr();
    c.phases.add(st.phases as u64);
    c.trees.add(st.steps as u64);
    c.pushes.add(st.pushes);
    c.deferrals.add(st.deferrals);
    if st.gap_rescue_armed() {
        c.rescue_armed.incr();
    }
    if st.budget_exhausted {
        c.budget_exhausted.incr();
    }
    if let Some(s) = run_span.as_mut() {
        s.field("lambda", lambda_scaled / scale);
        s.field("phases", st.phases);
        s.field("steps", st.steps);
        s.field("pushes", st.pushes);
        s.field("deferrals", st.deferrals);
        s.field("budget_exhausted", st.budget_exhausted);
    }

    McfSolution {
        // λ in caller units: scaled instance demands were d/scale
        lambda: lambda_scaled / scale,
        // dual_ub bounds the *scaled* optimum; map back to caller units
        upper_bound: st.dual_ub / scale,
        phases: st.phases,
        steps: st.steps,
        budget_exhausted: st.budget_exhausted,
        utilization,
    }
}

/// Fleischer-style batched routing: one shortest-path tree per
/// (group, step) — a source tree rooted at the shared source, or a sink
/// tree rooted at the shared destination for `reversed` groups. Every
/// member routes along its tree path while that path's *current* length
/// stays within `(1 + ε)` of the far endpoint's distance at tree-build
/// time. Arc lengths only grow, so the build-time distance is a lower
/// bound on the current shortest path — a path passing the check is a
/// `(1 + ε)`-approximate shortest path, which is exactly the oracle the
/// Garg–Könemann analysis needs. Once a needed path drifts past the band,
/// the tree is recomputed.
///
/// Beyond the textbook `D(l) ≥ 1` termination, the batched loop can stop
/// as soon as the certified primal value meets the advertised guarantee
/// against a *dual* upper bound: any length function `l` proves
/// `OPT ≤ D(l)/α(l)` with `α(l) = Σ_j d_j·dist_l(s_j, t_j)` (scaling `l`
/// by `1/α(l)` makes it feasible for the dual LP). A phase-end tree per
/// group hands us under-estimates of every `dist_l`, and an
/// under-estimated α only *weakens* the bound — so the check costs one
/// tree pass plus an `O(m)` scan per phase and stopping at
/// `λ_certified ≥ (1 − 3ε)·D(l)/α(l)` delivers exactly the promised
/// `(1 − 3ε)·OPT`. This early exit is armed only once half of a finite
/// step budget is spent ([`RunState::gap_rescue_armed`]): it rescues a
/// certified answer from a run that would otherwise trip its budget,
/// while unbudgeted (or comfortably budgeted) runs keep the fully
/// converged λ of the `D(l) ≥ 1` termination.
fn route_batched(
    st: &mut RunState<'_>,
    groups: &[Group],
    rev: &ReverseIndex,
    scratch: &mut DijkstraScratch,
) {
    let one_plus_eps = 1.0 + st.eps;
    // Remaining (scaled) demand of the current group's members this phase.
    let mut rem: Vec<f64> = Vec::new();
    // Arc path of the member being routed (root-ward order; direction is
    // irrelevant for bottleneck/staleness/push).
    let mut path: Vec<usize> = Vec::new();
    // Per-group Σ d_j·dist(s_j, t_j) from the phase-end α pass: together a
    // lower bound on α under the end-of-phase lengths.
    let mut group_alpha = vec![0.0f64; groups.len()];

    'outer: while st.dual < 1.0 {
        // One span per phase (None while tracing is off — the only cost is
        // a relaxed load). End-of-phase trajectory fields (trees, pushes,
        // deferrals, D(l), certified λ, α, dual bound) are attached before
        // the span drops at the bottom of the iteration; a phase cut short
        // by `break 'outer` still emits its timing event.
        let mut phase_span = ft_obs::span!("fptas.phase", phase = st.phases);
        let (steps0, pushes0, deferrals0) = (st.steps, st.pushes, st.deferrals);
        for grp in groups {
            let members = &grp.members;
            rem.clear();
            rem.extend(members.iter().map(|&j| st.commodities[j].demand / st.scale));
            while rem.iter().any(|&r| r > 0.0) {
                if let Some(max) = st.max_steps {
                    if st.steps >= max {
                        st.budget_exhausted = true;
                        break 'outer;
                    }
                }
                st.steps += 1;
                if grp.reversed {
                    st.g.shortest_path_tree_to_with(rev, grp.root, &st.length, scratch);
                } else {
                    st.g.shortest_path_tree_with(grp.root, &st.length, scratch);
                }
                for (i, &j) in members.iter().enumerate() {
                    'member: while rem[i] > 0.0 {
                        // the member's endpoint away from the tree root
                        let far = if grp.reversed {
                            st.commodities[j].src
                        } else {
                            st.commodities[j].dst
                        };
                        if !scratch.reached(far) {
                            break 'outer; // cannot happen after the pre-check
                        }
                        // Distance at tree-build time: a lower bound on the
                        // current shortest-path distance (lengths only grow).
                        let Some(tree_dist) = scratch.distance(far) else {
                            break 'outer; // unreachable: reached() was true
                        };
                        path.clear();
                        if grp.reversed {
                            path.extend(st.g.tree_walk_to(scratch, far));
                        } else {
                            path.extend(st.g.tree_walk(scratch, far));
                        }
                        let mut bottleneck = f64::INFINITY;
                        let mut path_len = 0.0f64;
                        for &a in &path {
                            bottleneck = bottleneck.min(st.g.arc(a).cap);
                            path_len += st.length[a];
                        }
                        if path_len > one_plus_eps * tree_dist {
                            // this member's tree path is no longer a
                            // (1 + ε)-approximate shortest path — defer the
                            // member; other members route through different
                            // subtrees and may still be in band. The tree is
                            // rebuilt only when a full sweep leaves demand
                            // pending (each fresh tree serves at least one
                            // push: a fresh path trivially passes the check).
                            st.deferrals += 1;
                            break 'member;
                        }
                        let f = rem[i].min(bottleneck);
                        rem[i] -= f;
                        st.routed[j] += f;
                        st.pushes += 1;
                        for &a in &path {
                            let cap = st.g.arc(a).cap;
                            st.flow[a] += f;
                            let old = st.length[a];
                            st.length[a] = old * (1.0 + st.eps * f / cap);
                            st.dual += cap * (st.length[a] - old);
                        }
                        if st.dual >= 1.0 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        // Budget-rescue gap termination, armed only once half of a finite
        // step budget is spent: a phase-end α pass — one fresh tree per
        // group under the current lengths — makes the dual bound D(l)/α(l)
        // tight, which is what lets gap_converged fire before the budget
        // trips. The trees are counted against the step budget like any
        // other; a partial pass only weakens the bound (older entries
        // under-estimate their group's α contribution). While unarmed the
        // pass is skipped entirely and the loop runs to `D(l) ≥ 1`.
        st.phases += 1;
        st.note_phase_lambda();
        if let Some(s) = phase_span.as_mut() {
            s.field("trees", (st.steps - steps0) as u64);
            s.field("pushes", st.pushes - pushes0);
            s.field("deferrals", st.deferrals - deferrals0);
            s.field("dual", st.dual);
            s.field("lambda_scaled", st.best_hist.last().copied().unwrap_or(0.0));
            s.field("rescue_armed", st.gap_rescue_armed());
        }
        if st.gap_rescue_armed() {
            for (gi, grp) in groups.iter().enumerate() {
                if let Some(max) = st.max_steps {
                    if st.steps >= max {
                        st.budget_exhausted = true;
                        break 'outer;
                    }
                }
                st.steps += 1;
                if grp.reversed {
                    st.g.shortest_path_tree_to_with(rev, grp.root, &st.length, scratch);
                } else {
                    st.g.shortest_path_tree_with(grp.root, &st.length, scratch);
                }
                group_alpha[gi] = grp
                    .members
                    .iter()
                    .map(|&j| {
                        let far = if grp.reversed {
                            st.commodities[j].src
                        } else {
                            st.commodities[j].dst
                        };
                        let d = st.commodities[j].demand / st.scale;
                        d * scratch.distance(far).unwrap_or(0.0)
                    })
                    .sum();
            }
            let converged = st.gap_converged(&group_alpha);
            if let Some(s) = phase_span.as_mut() {
                s.field("alpha", group_alpha.iter().sum::<f64>());
                s.field("dual_ub", st.dual_ub);
                s.field("converged_by_gap", converged);
            }
            if converged {
                break;
            }
        }
        // Primal reset (see RunState::primal_reset): once, after the
        // lengths have seen two full phases of traffic, and only when the
        // dual is still far from terminating — runs that are about to
        // converge keep their accumulated flow.
        if st.phases == 2 && st.primal_floor.is_none() && st.dual < 0.25 {
            st.primal_reset();
            if let Some(s) = phase_span.as_mut() {
                s.field("primal_reset", true);
            }
        }
    }
}

/// The original per-commodity routing loop: one early-exit Dijkstra per
/// push. Kept verbatim as the oracle behind
/// [`max_concurrent_flow_reference`].
fn route_reference(st: &mut RunState<'_>, scratch: &mut DijkstraScratch) {
    'outer: while st.dual < 1.0 {
        let mut phase_span = ft_obs::span!("fptas.phase", phase = st.phases);
        let (steps0, pushes0) = (st.steps, st.pushes);
        for (j, c) in st.commodities.iter().enumerate() {
            let mut rem = c.demand / st.scale;
            while rem > 0.0 && st.dual < 1.0 {
                if let Some(max) = st.max_steps {
                    if st.steps >= max {
                        st.budget_exhausted = true;
                        break 'outer;
                    }
                }
                st.steps += 1;
                // allocation-free: path lands in the reused scratch buffers
                if st
                    .g
                    .shortest_path_with(c.src, c.dst, &st.length, scratch)
                    .is_none()
                {
                    break 'outer; // cannot happen after the pre-check
                }
                let bottleneck = scratch
                    .path()
                    .iter()
                    .map(|&a| st.g.arc(a).cap)
                    .fold(f64::INFINITY, f64::min);
                let f = rem.min(bottleneck);
                rem -= f;
                st.routed[j] += f;
                st.pushes += 1;
                for &a in scratch.path() {
                    let cap = st.g.arc(a).cap;
                    st.flow[a] += f;
                    let old = st.length[a];
                    st.length[a] = old * (1.0 + st.eps * f / cap);
                    st.dual += cap * (st.length[a] - old);
                }
            }
            if st.dual >= 1.0 {
                break 'outer;
            }
        }
        st.phases += 1;
        if let Some(s) = phase_span.as_mut() {
            s.field("paths", (st.steps - steps0) as u64);
            s.field("pushes", st.pushes - pushes0);
            s.field("dual", st.dual);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_concurrent_flow_exact;
    use ft_graph::Graph;

    fn unit(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    fn check_one(g: &CapGraph, cs: &[Commodity], eps: f64, exact: f64, sol: &McfSolution) {
        assert!(
            sol.lambda <= exact + 1e-6,
            "approx {} exceeds exact {}",
            sol.lambda,
            exact
        );
        assert!(
            sol.lambda >= (1.0 - 3.0 * eps) * exact - 1e-9,
            "approx {} below guarantee for exact {}",
            sol.lambda,
            exact
        );
        assert!(sol.lambda <= sol.upper_bound + 1e-9);
        assert!(!sol.budget_exhausted, "unlimited run reported exhaustion");
        for &u in &sol.utilization {
            assert!(u <= 1.0 + 1e-9, "utilization {u} over capacity");
        }
        let _ = (g, cs);
    }

    /// Both solvers — batched and per-commodity reference — must satisfy
    /// the sandwich against the exact simplex on every fixed instance.
    fn check_against_exact(g: &CapGraph, cs: &[Commodity], eps: f64) {
        let exact = max_concurrent_flow_exact(g, cs).unwrap();
        let opts = FptasOptions::with_epsilon(eps);
        let batched = max_concurrent_flow(g, cs, opts).unwrap();
        check_one(g, cs, eps, exact, &batched);
        let reference = max_concurrent_flow_reference(g, cs, opts).unwrap();
        check_one(g, cs, eps, exact, &reference);
    }

    #[test]
    fn single_path() {
        let g = unit(3, &[(0, 1), (1, 2)]);
        check_against_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            0.05,
        );
    }

    #[test]
    fn diamond() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        check_against_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            }],
            0.05,
        );
    }

    #[test]
    fn shared_bottleneck() {
        let g = unit(4, &[(0, 2), (1, 2), (2, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 3,
                demand: 1.0,
            },
        ];
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn ring_all_to_all() {
        let g = unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cs = Vec::new();
        for s in 0..4 {
            for t in 0..4 {
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0,
                    });
                }
            }
        }
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn uneven_demands() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 3.0,
            },
            Commodity {
                src: 1,
                dst: 2,
                demand: 0.5,
            },
        ];
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn disconnected_commodity_zero() {
        let g = unit(3, &[(0, 1)]);
        let s = max_concurrent_flow(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            FptasOptions::default(),
        )
        .unwrap();
        assert_eq!(s.lambda, 0.0);
        // disconnection is a converged answer, not a budget artifact
        assert!(!s.budget_exhausted);
    }

    #[test]
    fn empty_commodities_infinite() {
        let g = unit(2, &[(0, 1)]);
        let s = max_concurrent_flow(&g, &[], FptasOptions::default()).unwrap();
        assert!(s.lambda.is_infinite());
        assert!(!s.budget_exhausted);
    }

    #[test]
    fn bad_epsilon_rejected() {
        let g = unit(2, &[(0, 1)]);
        let cs = [Commodity {
            src: 0,
            dst: 1,
            demand: 1.0,
        }];
        for eps in [0.0, -0.1, 0.5, 1.0] {
            let err = max_concurrent_flow(&g, &cs, FptasOptions::with_epsilon(eps)).unwrap_err();
            assert!(matches!(err, McfError::InvalidEpsilon { .. }), "eps {eps}");
        }
    }

    #[test]
    fn tiny_lambda_instance_scaled_correctly() {
        // one unit path shared by 100 units of demand → λ = 0.01; the
        // pre-scaling must keep the run short and the answer accurate.
        let g = unit(3, &[(0, 1), (1, 2)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 100.0,
        }];
        let s = max_concurrent_flow(&g, &cs, FptasOptions::with_epsilon(0.05)).unwrap();
        assert!((s.lambda - 0.01).abs() < 0.002, "λ = {}", s.lambda);
    }

    #[test]
    fn step_budget_respected_and_reported() {
        let g = unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let s = max_concurrent_flow(
            &g,
            &cs,
            FptasOptions {
                epsilon: 0.01,
                max_steps: Some(5),
            },
        )
        .unwrap();
        assert!(s.steps <= 5 * 5, "rescaling runs are each capped");
        // ε = 0.01 needs far more than 5 trees to converge: the budget must
        // be *reported*, not silently swallowed.
        assert!(s.budget_exhausted);
    }

    #[test]
    fn converged_run_reports_no_exhaustion() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let cs = [Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        }];
        let s = max_concurrent_flow(
            &g,
            &cs,
            FptasOptions {
                epsilon: 0.1,
                max_steps: Some(1_000_000),
            },
        )
        .unwrap();
        assert!(!s.budget_exhausted);
        assert!(s.lambda > 0.0);
    }

    #[test]
    fn groups_first_appearance_order_source_side() {
        let c = |src, dst| Commodity {
            src,
            dst,
            demand: 1.0,
        };
        // src and dst multiplicities tie everywhere → all source-side
        let cs = [c(3, 0), c(1, 2), c(3, 2), c(0, 3), c(1, 0)];
        let groups = group_commodities(&cs);
        let expect = |root, members: Vec<usize>| Group {
            root,
            reversed: false,
            members,
        };
        assert_eq!(
            groups,
            vec![
                expect(3, vec![0, 2]),
                expect(1, vec![1, 4]),
                expect(0, vec![3])
            ]
        );
    }

    #[test]
    fn groups_batch_shared_destinations_under_sink_trees() {
        let c = |src, dst| Commodity {
            src,
            dst,
            demand: 1.0,
        };
        // three sources converging on one destination: one sink tree, not
        // three source trees — plus one ordinary source group
        let cs = [c(0, 3), c(1, 3), c(2, 3), c(3, 0)];
        let groups = group_commodities(&cs);
        assert_eq!(
            groups,
            vec![
                Group {
                    root: 3,
                    reversed: true,
                    members: vec![0, 1, 2],
                },
                Group {
                    root: 3,
                    reversed: false,
                    members: vec![3],
                },
            ]
        );
    }

    #[test]
    fn precheck_runs_one_sssp_per_distinct_source() {
        // 5 commodities over 2 distinct sources → exactly 2 scratch
        // warm-ups, not 5 (the old per-commodity pre-check did 5).
        let g = unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = |src, dst| Commodity {
            src,
            dst,
            demand: 1.0,
        };
        let cs = [c(0, 1), c(0, 2), c(0, 3), c(2, 0), c(2, 1)];
        let groups = group_commodities(&cs);
        let rev = g.reverse_index();
        let mut scratch = DijkstraScratch::new();
        assert!(all_reachable(&g, &cs, &groups, &rev, &mut scratch));
        assert_eq!(scratch.runs(), 2, "one SSSP per tree batch");
    }

    #[test]
    fn batched_close_to_reference_on_fixed_instances() {
        // The batched solver routes along (1 + ε)-approximate paths, so the
        // two certified values need not be bit-identical — but both are
        // (1 − 3ε)-approximations, so they agree within the joint band.
        let eps = 0.05;
        let cases: Vec<(CapGraph, Vec<Commodity>)> = vec![
            (
                unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]),
                vec![
                    Commodity {
                        src: 0,
                        dst: 3,
                        demand: 2.0,
                    },
                    Commodity {
                        src: 1,
                        dst: 2,
                        demand: 1.0,
                    },
                ],
            ),
            (
                unit(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]),
                vec![
                    Commodity {
                        src: 0,
                        dst: 3,
                        demand: 1.0,
                    },
                    Commodity {
                        src: 0,
                        dst: 2,
                        demand: 1.0,
                    },
                    Commodity {
                        src: 4,
                        dst: 1,
                        demand: 0.5,
                    },
                ],
            ),
        ];
        for (g, cs) in &cases {
            let opts = FptasOptions::with_epsilon(eps);
            let b = max_concurrent_flow(g, cs, opts).unwrap().lambda;
            let r = max_concurrent_flow_reference(g, cs, opts).unwrap().lambda;
            assert!(
                b >= (1.0 - 3.0 * eps) * r - 1e-9 && r >= (1.0 - 3.0 * eps) * b - 1e-9,
                "batched {b} vs reference {r} outside the ε band"
            );
        }
    }

    #[test]
    fn random_instances_match_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..6 {
            // random connected graph on 6 nodes
            let n = 6;
            let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (rng.random_range(0..v), v)).collect();
            for _ in 0..4 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let g = unit(n as usize, &edges);
            let mut cs = Vec::new();
            for _ in 0..3 {
                let s = rng.random_range(0..n) as usize;
                let t = rng.random_range(0..n) as usize;
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0 + rng.random_range(0..3) as f64,
                    });
                }
            }
            if cs.is_empty() {
                continue;
            }
            let cs = crate::aggregate_commodities(cs.iter().map(|c| (c.src, c.dst, c.demand)));
            check_against_exact(&g, &cs, 0.08);
            let _ = trial;
        }
    }
}
