//! The Garg–Könemann FPTAS for maximum concurrent multi-commodity flow,
//! with Fleischer-style phase routing.
//!
//! # Algorithm
//!
//! Every arc starts with length `δ/cap(a)` where
//! `δ = (m/(1−ε))^(−1/ε)`. The algorithm proceeds in *phases*; in each
//! phase every commodity routes its full demand, one shortest path at a
//! time under the current lengths, sending at most the path's bottleneck
//! capacity per step. After pushing `f` over arc `a`, the arc's length is
//! multiplied by `(1 + ε·f/cap(a))`. The run stops when the dual value
//! `D(l) = Σ cap(a)·l(a)` reaches 1.
//!
//! The raw accumulated flow violates capacities by at most a
//! `log_{1+ε}(1/δ)` factor; dividing by the *actual worst overload*
//! `μ = max_a flow(a)/cap(a)` yields a certified feasible solution:
//!
//! ```text
//! λ = (min_j routed_j / d_j) / μ
//! ```
//!
//! This certificate is what [`max_concurrent_flow`] reports — it is a true
//! lower bound on the optimum independent of floating-point behaviour, and
//! Garg–Könemann's analysis guarantees it is ≥ (1 − 3ε) · OPT.
//!
//! # Demand pre-scaling
//!
//! The phase count grows with the optimal λ of the instance as given, so
//! demands are internally rescaled (using the node-cut upper bound, then
//! adaptively) to put λ near 1. The reported λ is mapped back to the
//! caller's demand units.

use crate::bounds::node_cut_upper_bound;
use crate::digraph::{CapGraph, DijkstraScratch};
use crate::{Commodity, McfError};

/// Tuning knobs for the FPTAS.
#[derive(Clone, Copy, Debug)]
pub struct FptasOptions {
    /// Approximation parameter ε ∈ (0, 0.5). The certified λ is
    /// ≥ (1 − 3ε)·OPT. Smaller ε costs ~1/ε² more work.
    pub epsilon: f64,
    /// Safety valve: abort after this many routing steps (shortest-path
    /// computations). `None` = unlimited.
    pub max_steps: Option<usize>,
}

impl Default for FptasOptions {
    fn default() -> Self {
        FptasOptions {
            epsilon: 0.1,
            max_steps: None,
        }
    }
}

impl FptasOptions {
    /// Options with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        FptasOptions {
            epsilon,
            ..Default::default()
        }
    }
}

/// Result of an FPTAS run.
#[derive(Clone, Debug)]
pub struct McfSolution {
    /// Certified-feasible concurrent flow rate (a lower bound on OPT,
    /// ≥ (1 − 3ε)·OPT).
    pub lambda: f64,
    /// Upper bound from the node cut (∞ if unconstrained).
    pub upper_bound: f64,
    /// Completed phases.
    pub phases: usize,
    /// Total shortest-path computations.
    pub steps: usize,
    /// Per-arc utilization of the certified solution (flow/cap ∈ [0, 1]).
    pub utilization: Vec<f64>,
}

/// Solves max concurrent flow approximately; see module docs.
///
/// Returns λ = ∞ for an empty commodity set and λ = 0 when any commodity
/// is disconnected.
///
/// # Errors
/// [`McfError::InvalidEpsilon`] when `opts.epsilon` is outside `(0, 0.5)`;
/// [`McfError::InvalidCommodity`] when a commodity has `src == dst` or
/// non-positive demand (filter with [`crate::aggregate_commodities`]).
pub fn max_concurrent_flow(
    g: &CapGraph,
    commodities: &[Commodity],
    opts: FptasOptions,
) -> Result<McfSolution, McfError> {
    if !(opts.epsilon > 0.0 && opts.epsilon < 0.5) {
        return Err(McfError::InvalidEpsilon {
            epsilon: opts.epsilon,
        });
    }
    let m = g.arc_count();
    if commodities.is_empty() {
        return Ok(McfSolution {
            lambda: f64::INFINITY,
            upper_bound: f64::INFINITY,
            phases: 0,
            steps: 0,
            utilization: vec![0.0; m],
        });
    }
    for c in commodities {
        if c.src == c.dst || c.demand <= 0.0 {
            return Err(McfError::InvalidCommodity {
                src: c.src,
                dst: c.dst,
                demand: c.demand,
            });
        }
    }
    let ub = node_cut_upper_bound(g, commodities);

    // One Dijkstra scratch for the whole solve: the pre-check below, plus
    // every routing step of every run_once call, reuse its buffers (zero
    // per-call allocation after the first Dijkstra warms it up).
    let mut scratch = DijkstraScratch::new();

    // Reachability pre-check: a disconnected commodity pins λ to 0.
    {
        let ones = vec![1.0f64; m];
        for c in commodities {
            if g.shortest_path_with(c.src, c.dst, &ones, &mut scratch)
                .is_none()
            {
                return Ok(McfSolution {
                    lambda: 0.0,
                    upper_bound: ub,
                    phases: 0,
                    steps: 0,
                    utilization: vec![0.0; m],
                });
            }
        }
    }

    // Adaptive demand scaling. The solver runs on demands `d/scale`; the
    // scaled instance's optimum is `OPT·scale`, so `scale = 1/OPT_est`
    // puts it near 1. The node cut gives OPT_est = ub; refine adaptively
    // from the certified result when the cut is loose.
    let mut scale = if ub.is_finite() && ub > 0.0 {
        1.0 / ub
    } else {
        1.0
    };
    let mut last = run_once(g, commodities, scale, opts, &mut scratch);
    for _ in 0..4 {
        let scaled_lambda = last.lambda * scale; // λ' of the scaled instance
        if (0.2..=5.0).contains(&scaled_lambda) {
            break;
        }
        if last.lambda <= 0.0 {
            // nothing routed: the instance was scaled far too hard (λ' ≫ 1
            // exhausts the dual before every commodity is served once).
            // Loosen aggressively and retry.
            scale *= 16.0;
        } else {
            scale /= scaled_lambda; // new scale ≈ 1/OPT
        }
        last = run_once(g, commodities, scale, opts, &mut scratch);
    }
    last.upper_bound = ub;
    Ok(last)
}

/// One Garg–Könemann run on demands divided by `scale` (so that the scaled
/// optimum is ≈ 1 when `scale` ≈ 1/OPT). The returned λ is already mapped
/// back to the caller's demand units.
fn run_once(
    g: &CapGraph,
    commodities: &[Commodity],
    scale: f64,
    opts: FptasOptions,
    scratch: &mut DijkstraScratch,
) -> McfSolution {
    let eps = opts.epsilon;
    let m = g.arc_count();
    let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);

    let mut length: Vec<f64> = (0..m).map(|a| delta / g.arc(a).cap).collect();
    let mut flow = vec![0.0f64; m];
    let mut routed: Vec<f64> = vec![0.0; commodities.len()];
    let mut dual: f64 = (0..m).map(|a| g.arc(a).cap * length[a]).sum();
    let mut phases = 0usize;
    let mut steps = 0usize;

    'outer: while dual < 1.0 {
        for (j, c) in commodities.iter().enumerate() {
            let mut rem = c.demand / scale;
            while rem > 0.0 && dual < 1.0 {
                if let Some(max) = opts.max_steps {
                    if steps >= max {
                        break 'outer;
                    }
                }
                steps += 1;
                // allocation-free: path lands in the reused scratch buffers
                if g.shortest_path_with(c.src, c.dst, &length, scratch)
                    .is_none()
                {
                    break 'outer; // cannot happen after the pre-check
                }
                let bottleneck = scratch
                    .path()
                    .iter()
                    .map(|&a| g.arc(a).cap)
                    .fold(f64::INFINITY, f64::min);
                let f = rem.min(bottleneck);
                rem -= f;
                routed[j] += f;
                for &a in scratch.path() {
                    let cap = g.arc(a).cap;
                    flow[a] += f;
                    let old = length[a];
                    length[a] = old * (1.0 + eps * f / cap);
                    dual += cap * (length[a] - old);
                }
            }
            if dual >= 1.0 {
                break 'outer;
            }
        }
        phases += 1;
    }

    // Certified feasible λ: scale the accumulated flow down by its worst
    // overload, take the worst-served commodity.
    let mu = (0..m)
        .map(|a| flow[a] / g.arc(a).cap)
        .fold(0.0f64, f64::max)
        .max(1.0); // if nothing overloads, the flow is already feasible
    let served = commodities
        .iter()
        .enumerate()
        .map(|(j, c)| routed[j] / (c.demand / scale))
        .fold(f64::INFINITY, f64::min);
    let lambda_scaled = if served.is_finite() { served / mu } else { 0.0 };
    let utilization: Vec<f64> = (0..m).map(|a| flow[a] / g.arc(a).cap / mu).collect();

    McfSolution {
        // λ in caller units: scaled instance demands were d/scale
        lambda: lambda_scaled / scale,
        upper_bound: f64::INFINITY,
        phases,
        steps,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_concurrent_flow_exact;
    use ft_graph::Graph;

    fn unit(n: usize, edges: &[(u32, u32)]) -> CapGraph {
        CapGraph::from_graph(&Graph::from_edges(n, edges), 1.0)
    }

    fn check_against_exact(g: &CapGraph, cs: &[Commodity], eps: f64) {
        let exact = max_concurrent_flow_exact(g, cs).unwrap();
        let approx = max_concurrent_flow(g, cs, FptasOptions::with_epsilon(eps)).unwrap();
        assert!(
            approx.lambda <= exact + 1e-6,
            "approx {} exceeds exact {}",
            approx.lambda,
            exact
        );
        assert!(
            approx.lambda >= (1.0 - 3.0 * eps) * exact - 1e-9,
            "approx {} below guarantee for exact {}",
            approx.lambda,
            exact
        );
        assert!(approx.lambda <= approx.upper_bound + 1e-9);
        for &u in &approx.utilization {
            assert!(u <= 1.0 + 1e-9, "utilization {u} over capacity");
        }
    }

    #[test]
    fn single_path() {
        let g = unit(3, &[(0, 1), (1, 2)]);
        check_against_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            0.05,
        );
    }

    #[test]
    fn diamond() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        check_against_exact(
            &g,
            &[Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            }],
            0.05,
        );
    }

    #[test]
    fn shared_bottleneck() {
        let g = unit(4, &[(0, 2), (1, 2), (2, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 3,
                demand: 1.0,
            },
        ];
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn ring_all_to_all() {
        let g = unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cs = Vec::new();
        for s in 0..4 {
            for t in 0..4 {
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0,
                    });
                }
            }
        }
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn uneven_demands() {
        let g = unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]);
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 3.0,
            },
            Commodity {
                src: 1,
                dst: 2,
                demand: 0.5,
            },
        ];
        check_against_exact(&g, &cs, 0.05);
    }

    #[test]
    fn disconnected_commodity_zero() {
        let g = unit(3, &[(0, 1)]);
        let s = max_concurrent_flow(
            &g,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            FptasOptions::default(),
        )
        .unwrap();
        assert_eq!(s.lambda, 0.0);
    }

    #[test]
    fn empty_commodities_infinite() {
        let g = unit(2, &[(0, 1)]);
        let s = max_concurrent_flow(&g, &[], FptasOptions::default()).unwrap();
        assert!(s.lambda.is_infinite());
    }

    #[test]
    fn bad_epsilon_rejected() {
        let g = unit(2, &[(0, 1)]);
        let cs = [Commodity {
            src: 0,
            dst: 1,
            demand: 1.0,
        }];
        for eps in [0.0, -0.1, 0.5, 1.0] {
            let err = max_concurrent_flow(&g, &cs, FptasOptions::with_epsilon(eps)).unwrap_err();
            assert!(matches!(err, McfError::InvalidEpsilon { .. }), "eps {eps}");
        }
    }

    #[test]
    fn tiny_lambda_instance_scaled_correctly() {
        // one unit path shared by 100 units of demand → λ = 0.01; the
        // pre-scaling must keep the run short and the answer accurate.
        let g = unit(3, &[(0, 1), (1, 2)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 100.0,
        }];
        let s = max_concurrent_flow(&g, &cs, FptasOptions::with_epsilon(0.05)).unwrap();
        assert!((s.lambda - 0.01).abs() < 0.002, "λ = {}", s.lambda);
    }

    #[test]
    fn step_budget_respected() {
        let g = unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cs = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        let s = max_concurrent_flow(
            &g,
            &cs,
            FptasOptions {
                epsilon: 0.01,
                max_steps: Some(5),
            },
        )
        .unwrap();
        assert!(s.steps <= 5 * 5, "rescaling runs are each capped");
    }

    #[test]
    fn random_instances_match_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..6 {
            // random connected graph on 6 nodes
            let n = 6;
            let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (rng.random_range(0..v), v)).collect();
            for _ in 0..4 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let g = unit(n as usize, &edges);
            let mut cs = Vec::new();
            for _ in 0..3 {
                let s = rng.random_range(0..n) as usize;
                let t = rng.random_range(0..n) as usize;
                if s != t {
                    cs.push(Commodity {
                        src: s,
                        dst: t,
                        demand: 1.0 + rng.random_range(0..3) as f64,
                    });
                }
            }
            if cs.is_empty() {
                continue;
            }
            let cs = crate::aggregate_commodities(cs.iter().map(|c| (c.src, c.dst, c.demand)));
            check_against_exact(&g, &cs, 0.08);
            let _ = trial;
        }
    }
}
