//! Directed capacitated graph used by the flow solvers.
//!
//! Undirected data center links are full-duplex: each direction carries the
//! full link bandwidth independently. [`CapGraph::from_graph`] therefore
//! expands every undirected edge into two opposing arcs with the given
//! per-direction capacity — exactly the "all links have one unit bandwidth"
//! setting of the paper (§3.1).
//!
//! The FPTAS re-runs Dijkstra under per-*arc* lengths thousands of times,
//! so this type keeps its own compact arc-indexed adjacency and a Dijkstra
//! with early exit at the destination, instead of reusing the undirected
//! `ft-graph` one (whose lengths are per undirected edge).

use ft_graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A directed arc with capacity.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity (per paper: 1.0 for switch–switch links).
    pub cap: f64,
}

/// Directed capacitated multigraph.
#[derive(Clone, Debug)]
pub struct CapGraph {
    arcs: Vec<Arc>,
    out: Vec<Vec<u32>>,
}

impl CapGraph {
    /// Creates an empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CapGraph {
            arcs: Vec::new(),
            out: vec![Vec::new(); n],
        }
    }

    /// Expands an undirected graph into opposing arc pairs of capacity
    /// `cap_per_direction` each.
    pub fn from_graph(g: &Graph, cap_per_direction: f64) -> Self {
        let mut cg = CapGraph::new(g.node_count());
        for (_, a, b) in g.edges() {
            cg.add_arc(a.index(), b.index(), cap_per_direction);
            cg.add_arc(b.index(), a.index(), cap_per_direction);
        }
        cg
    }

    /// Adds a directed arc; returns its index.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(from < self.out.len() && to < self.out.len());
        assert!(cap > 0.0 && cap.is_finite(), "capacity must be positive");
        let id = self.arcs.len();
        self.arcs.push(Arc { from, to, cap });
        self.out[from].push(ft_graph::id32(id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given index.
    pub fn arc(&self, i: usize) -> Arc {
        self.arcs[i]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Arc indices leaving `v`.
    pub fn out_arcs(&self, v: usize) -> &[u32] {
        &self.out[v]
    }

    /// Sum of capacities leaving `v`.
    pub fn out_capacity(&self, v: usize) -> f64 {
        self.out[v].iter().map(|&a| self.arcs[a as usize].cap).sum()
    }

    /// Sum of capacities entering `v`. O(arcs); cached by callers that need
    /// it repeatedly.
    pub fn in_capacity(&self, v: usize) -> f64 {
        self.arcs.iter().filter(|a| a.to == v).map(|a| a.cap).sum()
    }

    /// Dijkstra from `src` under per-arc `lengths`, stopping as soon as
    /// `dst` is settled. Returns the arc path `src → dst` and its length,
    /// or `None` if unreachable.
    ///
    /// `lengths[i]` must be ≥ 0 for every arc `i`. Convenience wrapper over
    /// [`CapGraph::shortest_path_with`] that pays one scratch allocation per
    /// call; hot loops (the FPTAS phases, Yen spurs) hold a
    /// [`DijkstraScratch`] and call the `_with` variant directly.
    pub fn shortest_path(
        &self,
        src: usize,
        dst: usize,
        lengths: &[f64],
    ) -> Option<(Vec<usize>, f64)> {
        let mut scratch = DijkstraScratch::new();
        let d = self.shortest_path_with(src, dst, lengths, &mut scratch)?;
        Some((std::mem::take(&mut scratch.path), d))
    }

    /// [`CapGraph::shortest_path`] into a reusable [`DijkstraScratch`]:
    /// zero heap allocation once the scratch has warmed up to this graph's
    /// node count. On success the arc path is left in
    /// [`DijkstraScratch::path`] and the distance is returned.
    ///
    /// Bit-identical to `shortest_path`: same heap ordering (distance, then
    /// node index), same relaxation order, same early exit at `dst`.
    pub fn shortest_path_with(
        &self,
        src: usize,
        dst: usize,
        lengths: &[f64],
        scratch: &mut DijkstraScratch,
    ) -> Option<f64> {
        scratch.begin(self.out.len());
        scratch.settle(src, 0.0, u32::MAX);
        scratch.heap.push(HeapArc { d: 0.0, v: src });
        while let Some(HeapArc { d, v }) = scratch.heap.pop() {
            if v == dst {
                break;
            }
            // every heap entry was stamped when pushed this run, so the
            // plain (un-stamped) dist read is valid
            if d > scratch.dist[v] {
                continue;
            }
            for &ai in &self.out[v] {
                let a = self.arcs[ai as usize];
                let nd = d + lengths[ai as usize];
                if nd < scratch.dist_of(a.to) {
                    scratch.settle(a.to, nd, ai);
                    scratch.heap.push(HeapArc { d: nd, v: a.to });
                }
            }
        }
        if scratch.stamp[dst] != scratch.gen || !scratch.dist[dst].is_finite() {
            return None;
        }
        let mut cur = dst;
        while cur != src {
            let ai = scratch.parent[cur];
            scratch.path.push(ai as usize);
            cur = self.arcs[ai as usize].from;
        }
        scratch.path.reverse();
        Some(scratch.dist[dst])
    }
}

/// Min-heap entry for the arc Dijkstra: minimum distance first, ties broken
/// by node index so the pop order (and with it every FPTAS dual update) is
/// fully deterministic.
#[derive(Clone, Debug, PartialEq)]
struct HeapArc {
    d: f64,
    v: usize,
}

impl Eq for HeapArc {}

impl Ord for HeapArc {
    fn cmp(&self, o: &Self) -> Ordering {
        o.d.total_cmp(&self.d).then_with(|| o.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapArc {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

/// Reusable state for [`CapGraph::shortest_path_with`].
///
/// The FPTAS runs one Dijkstra per phase step — tens of thousands of calls
/// on the same graph — and allocating `dist`/`parent`/heap each time
/// dominated the runtime at k ≥ 16. The scratch keeps those buffers alive
/// across calls:
///
/// * `dist`/`parent` entries are valid only where `stamp[v] == gen`; a new
///   run just bumps `gen` instead of re-filling the arrays (O(1) reset, with
///   a full wipe on the ~4-billion-run stamp wraparound).
/// * the binary heap and the output path vector are `clear()`ed, which
///   retains their capacity.
///
/// After the first call at a given graph size, subsequent calls perform no
/// heap allocation. A scratch may be shared across graphs; `begin` grows the
/// arrays to the largest node count seen.
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    /// Current run id; array entries are valid iff their stamp matches.
    gen: u32,
    /// Per-node stamp of the run that last wrote `dist`/`parent`.
    stamp: Vec<u32>,
    /// Tentative distance per node (valid where stamped).
    dist: Vec<f64>,
    /// Incoming arc on the best known path (valid where stamped;
    /// `u32::MAX` marks the source).
    parent: Vec<u32>,
    /// Priority queue, drained at the start of every run.
    heap: BinaryHeap<HeapArc>,
    /// Arc path of the last successful run, source → destination.
    path: Vec<usize>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    /// Starts a new run over a graph with `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, u32::MAX);
        }
        if self.gen == u32::MAX {
            // stamp wraparound: wipe so old runs can't alias run 1 again
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
        self.path.clear();
    }

    /// Distance of `v` in the current run (`∞` when untouched).
    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.stamp[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// Records `dist`/`parent` for `v` and marks it touched this run.
    #[inline]
    fn settle(&mut self, v: usize, d: f64, parent_arc: u32) {
        self.stamp[v] = self.gen;
        self.dist[v] = d;
        self.parent[v] = parent_arc;
    }

    /// Arc path found by the last successful
    /// [`CapGraph::shortest_path_with`] call, in source → destination order.
    pub fn path(&self) -> &[usize] {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::Graph;

    #[test]
    fn from_graph_doubles_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        assert_eq!(cg.arc_count(), 4);
        assert_eq!(cg.node_count(), 3);
        assert_eq!(cg.out_capacity(1), 2.0);
        assert_eq!(cg.in_capacity(1), 2.0);
    }

    #[test]
    fn shortest_path_unit_lengths() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let len = vec![1.0; cg.arc_count()];
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path.len(), 2);
        // arcs chain correctly
        assert_eq!(cg.arc(path[0]).from, 0);
        assert_eq!(cg.arc(path[0]).to, cg.arc(path[1]).from);
        assert_eq!(cg.arc(path[1]).to, 2);
    }

    #[test]
    fn shortest_path_weighted_directional() {
        let mut cg = CapGraph::new(3);
        let a01 = cg.add_arc(0, 1, 1.0);
        let a12 = cg.add_arc(1, 2, 1.0);
        let a02 = cg.add_arc(0, 2, 1.0);
        let mut len = vec![0.0; 3];
        len[a01] = 1.0;
        len[a12] = 1.0;
        len[a02] = 5.0;
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![a01, a12]);
    }

    #[test]
    fn shortest_path_respects_direction() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 1.0);
        let len = vec![1.0];
        assert!(cg.shortest_path(1, 0, &len).is_none());
        assert!(cg.shortest_path(0, 1, &len).is_some());
    }

    #[test]
    fn shortest_path_src_is_dst() {
        let cg = CapGraph::new(1);
        let (path, d) = cg.shortest_path(0, 0, &[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let lengths: Vec<f64> = (0..cg.arc_count()).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut scratch = DijkstraScratch::new();
        for src in 0..5 {
            for dst in 0..5 {
                let fresh = cg.shortest_path(src, dst, &lengths);
                let reused = cg
                    .shortest_path_with(src, dst, &lengths, &mut scratch)
                    .map(|d| (scratch.path().to_vec(), d));
                match (fresh, reused) {
                    (Some((p1, d1)), Some((p2, d2))) => {
                        assert_eq!(p1, p2, "{src}->{dst}");
                        assert_eq!(d1.to_bits(), d2.to_bits(), "{src}->{dst}");
                    }
                    (None, None) => {}
                    other => panic!("fresh/reused disagree for {src}->{dst}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn scratch_unreachable_then_reachable() {
        let mut cg = CapGraph::new(3);
        cg.add_arc(0, 1, 1.0);
        let len = vec![1.0];
        let mut s = DijkstraScratch::new();
        assert!(cg.shortest_path_with(0, 2, &len, &mut s).is_none());
        // stale state from the failed run must not leak into the next one
        assert_eq!(cg.shortest_path_with(0, 1, &len, &mut s), Some(1.0));
        assert_eq!(s.path(), &[0]);
        assert!(cg.shortest_path_with(2, 1, &len, &mut s).is_none());
    }

    #[test]
    fn scratch_grows_across_graphs() {
        let mut s = DijkstraScratch::new();
        let small = CapGraph::from_graph(&Graph::from_edges(2, &[(0, 1)]), 1.0);
        assert!(small.shortest_path_with(0, 1, &[1.0; 2], &mut s).is_some());
        let big = CapGraph::from_graph(&Graph::from_edges(6, &[(0, 1), (1, 5)]), 1.0);
        assert_eq!(big.shortest_path_with(0, 5, &[1.0; 4], &mut s), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 0.0);
    }
}
