//! Directed capacitated graph used by the flow solvers.
//!
//! Undirected data center links are full-duplex: each direction carries the
//! full link bandwidth independently. [`CapGraph::from_graph`] therefore
//! expands every undirected edge into two opposing arcs with the given
//! per-direction capacity — exactly the "all links have one unit bandwidth"
//! setting of the paper (§3.1).
//!
//! The FPTAS re-runs Dijkstra under per-*arc* lengths thousands of times,
//! so this type keeps its own compact arc-indexed adjacency and a Dijkstra
//! with early exit at the destination, instead of reusing the undirected
//! `ft-graph` one (whose lengths are per undirected edge).

use ft_graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A directed arc with capacity.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity (per paper: 1.0 for switch–switch links).
    pub cap: f64,
}

/// Directed capacitated multigraph.
#[derive(Clone, Debug)]
pub struct CapGraph {
    arcs: Vec<Arc>,
    out: Vec<Vec<u32>>,
}

impl CapGraph {
    /// Creates an empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CapGraph {
            arcs: Vec::new(),
            out: vec![Vec::new(); n],
        }
    }

    /// Expands an undirected graph into opposing arc pairs of capacity
    /// `cap_per_direction` each.
    pub fn from_graph(g: &Graph, cap_per_direction: f64) -> Self {
        let mut cg = CapGraph::new(g.node_count());
        for (_, a, b) in g.edges() {
            cg.add_arc(a.index(), b.index(), cap_per_direction);
            cg.add_arc(b.index(), a.index(), cap_per_direction);
        }
        cg
    }

    /// Adds a directed arc; returns its index.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(from < self.out.len() && to < self.out.len());
        assert!(cap > 0.0 && cap.is_finite(), "capacity must be positive");
        let id = self.arcs.len();
        self.arcs.push(Arc { from, to, cap });
        self.out[from].push(ft_graph::id32(id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given index.
    pub fn arc(&self, i: usize) -> Arc {
        self.arcs[i]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Arc indices leaving `v`.
    pub fn out_arcs(&self, v: usize) -> &[u32] {
        &self.out[v]
    }

    /// Sum of capacities leaving `v`.
    pub fn out_capacity(&self, v: usize) -> f64 {
        self.out[v].iter().map(|&a| self.arcs[a as usize].cap).sum()
    }

    /// Sum of capacities entering `v`. O(arcs); cached by callers that need
    /// it repeatedly.
    pub fn in_capacity(&self, v: usize) -> f64 {
        self.arcs.iter().filter(|a| a.to == v).map(|a| a.cap).sum()
    }

    /// Dijkstra from `src` under per-arc `lengths`, stopping as soon as
    /// `dst` is settled. Returns the arc path `src → dst` and its length,
    /// or `None` if unreachable.
    ///
    /// `lengths[i]` must be ≥ 0 for every arc `i`.
    pub fn shortest_path(
        &self,
        src: usize,
        dst: usize,
        lengths: &[f64],
    ) -> Option<(Vec<usize>, f64)> {
        #[derive(PartialEq)]
        struct E {
            d: f64,
            v: usize,
        }
        impl Eq for E {}
        impl Ord for E {
            fn cmp(&self, o: &Self) -> Ordering {
                o.d.total_cmp(&self.d).then_with(|| o.v.cmp(&self.v))
            }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }

        let n = self.out.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<u32> = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(E { d: 0.0, v: src });
        while let Some(E { d, v }) = heap.pop() {
            if v == dst {
                break;
            }
            if d > dist[v] {
                continue;
            }
            for &ai in &self.out[v] {
                let a = self.arcs[ai as usize];
                let nd = d + lengths[ai as usize];
                if nd < dist[a.to] {
                    dist[a.to] = nd;
                    parent[a.to] = ai;
                    heap.push(E { d: nd, v: a.to });
                }
            }
        }
        if !dist[dst].is_finite() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let ai = parent[cur];
            path.push(ai as usize);
            cur = self.arcs[ai as usize].from;
        }
        path.reverse();
        Some((path, dist[dst]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::Graph;

    #[test]
    fn from_graph_doubles_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        assert_eq!(cg.arc_count(), 4);
        assert_eq!(cg.node_count(), 3);
        assert_eq!(cg.out_capacity(1), 2.0);
        assert_eq!(cg.in_capacity(1), 2.0);
    }

    #[test]
    fn shortest_path_unit_lengths() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let len = vec![1.0; cg.arc_count()];
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path.len(), 2);
        // arcs chain correctly
        assert_eq!(cg.arc(path[0]).from, 0);
        assert_eq!(cg.arc(path[0]).to, cg.arc(path[1]).from);
        assert_eq!(cg.arc(path[1]).to, 2);
    }

    #[test]
    fn shortest_path_weighted_directional() {
        let mut cg = CapGraph::new(3);
        let a01 = cg.add_arc(0, 1, 1.0);
        let a12 = cg.add_arc(1, 2, 1.0);
        let a02 = cg.add_arc(0, 2, 1.0);
        let mut len = vec![0.0; 3];
        len[a01] = 1.0;
        len[a12] = 1.0;
        len[a02] = 5.0;
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![a01, a12]);
    }

    #[test]
    fn shortest_path_respects_direction() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 1.0);
        let len = vec![1.0];
        assert!(cg.shortest_path(1, 0, &len).is_none());
        assert!(cg.shortest_path(0, 1, &len).is_some());
    }

    #[test]
    fn shortest_path_src_is_dst() {
        let cg = CapGraph::new(1);
        let (path, d) = cg.shortest_path(0, 0, &[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 0.0);
    }
}
