//! Directed capacitated graph used by the flow solvers.
//!
//! Undirected data center links are full-duplex: each direction carries the
//! full link bandwidth independently. [`CapGraph::from_graph`] therefore
//! expands every undirected edge into two opposing arcs with the given
//! per-direction capacity — exactly the "all links have one unit bandwidth"
//! setting of the paper (§3.1).
//!
//! The FPTAS re-runs Dijkstra under per-*arc* lengths thousands of times,
//! so this type keeps its own compact arc-indexed adjacency and a Dijkstra
//! with early exit at the destination, instead of reusing the undirected
//! `ft-graph` one (whose lengths are per undirected edge).

use ft_graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A directed arc with capacity.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity (per paper: 1.0 for switch–switch links).
    pub cap: f64,
}

/// Directed capacitated multigraph.
#[derive(Clone, Debug)]
pub struct CapGraph {
    arcs: Vec<Arc>,
    out: Vec<Vec<u32>>,
}

impl CapGraph {
    /// Creates an empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CapGraph {
            arcs: Vec::new(),
            out: vec![Vec::new(); n],
        }
    }

    /// Expands an undirected graph into opposing arc pairs of capacity
    /// `cap_per_direction` each.
    pub fn from_graph(g: &Graph, cap_per_direction: f64) -> Self {
        let mut cg = CapGraph::new(g.node_count());
        for (_, a, b) in g.edges() {
            cg.add_arc(a.index(), b.index(), cap_per_direction);
            cg.add_arc(b.index(), a.index(), cap_per_direction);
        }
        cg
    }

    /// Adds a directed arc; returns its index.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(from < self.out.len() && to < self.out.len());
        assert!(cap > 0.0 && cap.is_finite(), "capacity must be positive");
        let id = self.arcs.len();
        self.arcs.push(Arc { from, to, cap });
        self.out[from].push(ft_graph::id32(id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given index.
    pub fn arc(&self, i: usize) -> Arc {
        self.arcs[i]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Arc indices leaving `v`.
    pub fn out_arcs(&self, v: usize) -> &[u32] {
        &self.out[v]
    }

    /// Sum of capacities leaving `v`.
    pub fn out_capacity(&self, v: usize) -> f64 {
        self.out[v].iter().map(|&a| self.arcs[a as usize].cap).sum()
    }

    /// Sum of capacities entering `v`. O(arcs); cached by callers that need
    /// it repeatedly.
    pub fn in_capacity(&self, v: usize) -> f64 {
        self.arcs.iter().filter(|a| a.to == v).map(|a| a.cap).sum()
    }

    /// The single capacity shared by every arc, or `None` when arcs
    /// differ (or the graph is empty). The symmetry-aggregated solver
    /// requires uniform capacity within each arc class; a graph-wide
    /// uniform capacity — the unit-capacity switch graphs every
    /// throughput evaluation builds — certifies that in O(arcs) without
    /// per-class bookkeeping.
    pub fn uniform_cap(&self) -> Option<f64> {
        let first = self.arcs.first()?.cap;
        // Bitwise comparison, not an epsilon: capacities come from one
        // constructor constant, and any drift must disable aggregation.
        self.arcs
            .iter()
            .all(|a| a.cap.to_bits() == first.to_bits())
            .then_some(first)
    }

    /// Dijkstra from `src` under per-arc `lengths`, stopping as soon as
    /// `dst` is settled. Returns the arc path `src → dst` and its length,
    /// or `None` if unreachable.
    ///
    /// `lengths[i]` must be ≥ 0 for every arc `i`. Convenience wrapper over
    /// [`CapGraph::shortest_path_with`] that pays one scratch allocation per
    /// call; hot loops (the FPTAS phases, Yen spurs) hold a
    /// [`DijkstraScratch`] and call the `_with` variant directly.
    pub fn shortest_path(
        &self,
        src: usize,
        dst: usize,
        lengths: &[f64],
    ) -> Option<(Vec<usize>, f64)> {
        let mut scratch = DijkstraScratch::new();
        let d = self.shortest_path_with(src, dst, lengths, &mut scratch)?;
        Some((std::mem::take(&mut scratch.path), d))
    }

    /// [`CapGraph::shortest_path`] into a reusable [`DijkstraScratch`]:
    /// zero heap allocation once the scratch has warmed up to this graph's
    /// node count. On success the arc path is left in
    /// [`DijkstraScratch::path`] and the distance is returned.
    ///
    /// Bit-identical to `shortest_path`: same heap ordering (distance, then
    /// node index), same relaxation order, same early exit at `dst`.
    pub fn shortest_path_with(
        &self,
        src: usize,
        dst: usize,
        lengths: &[f64],
        scratch: &mut DijkstraScratch,
    ) -> Option<f64> {
        scratch.begin(self.out.len());
        scratch.settle(src, 0.0, u32::MAX);
        scratch.heap.push(HeapArc { d: 0.0, v: src });
        while let Some(HeapArc { d, v }) = scratch.heap.pop() {
            if v == dst {
                break;
            }
            // every heap entry was stamped when pushed this run, so the
            // plain (un-stamped) dist read is valid
            if d > scratch.dist[v] {
                continue;
            }
            for &ai in &self.out[v] {
                let a = self.arcs[ai as usize];
                let nd = d + lengths[ai as usize];
                if nd < scratch.dist_of(a.to) {
                    scratch.settle(a.to, nd, ai);
                    scratch.heap.push(HeapArc { d: nd, v: a.to });
                }
            }
        }
        if scratch.stamp[dst] != scratch.gen || !scratch.dist[dst].is_finite() {
            return None;
        }
        let mut cur = dst;
        while cur != src {
            let ai = scratch.parent[cur];
            scratch.path.push(ai as usize);
            cur = self.arcs[ai as usize].from;
        }
        scratch.path.reverse();
        Some(scratch.dist[dst])
    }

    /// Full single-source Dijkstra from `src` under per-arc `lengths` — no
    /// early exit, so afterwards the scratch holds the complete shortest-path
    /// tree: [`DijkstraScratch::reached`] / [`DijkstraScratch::distance`] are
    /// valid for every node and [`CapGraph::tree_walk`] yields the tree path
    /// to any reached destination.
    ///
    /// This is the kernel of the source-batched (Fleischer) FPTAS: one tree
    /// serves every commodity that shares `src`, replacing one early-exit
    /// Dijkstra *per commodity*. Heap ordering and relaxation order are
    /// identical to [`CapGraph::shortest_path_with`], so the tree path to a
    /// destination is the exact path that call would have produced.
    pub fn shortest_path_tree_with(
        &self,
        src: usize,
        lengths: &[f64],
        scratch: &mut DijkstraScratch,
    ) {
        scratch.begin(self.out.len());
        scratch.settle(src, 0.0, u32::MAX);
        scratch.heap.push(HeapArc { d: 0.0, v: src });
        while let Some(HeapArc { d, v }) = scratch.heap.pop() {
            if d > scratch.dist[v] {
                continue;
            }
            for &ai in &self.out[v] {
                let a = self.arcs[ai as usize];
                let nd = d + lengths[ai as usize];
                if nd < scratch.dist_of(a.to) {
                    scratch.settle(a.to, nd, ai);
                    scratch.heap.push(HeapArc { d: nd, v: a.to });
                }
            }
        }
    }

    /// Iterates the arc indices of the tree path to `dst` recorded by the
    /// last [`CapGraph::shortest_path_tree_with`] run, in destination →
    /// source order (the FPTAS only needs the arc *set* — bottleneck,
    /// staleness, pushes — so the reversal is never materialized). Yields
    /// nothing when `dst` was not reached or is the source itself.
    pub fn tree_walk<'a>(&'a self, scratch: &'a DijkstraScratch, dst: usize) -> TreeWalk<'a> {
        let cur = if scratch.reached(dst) {
            dst
        } else {
            usize::MAX
        };
        TreeWalk {
            scratch,
            arcs: &self.arcs,
            cur,
            toward_head: false,
        }
    }

    /// Builds the incoming-arc adjacency, the mirror of
    /// [`CapGraph::out_arcs`]. One `O(arcs)` pass, done once per solve and
    /// reused by every [`CapGraph::shortest_path_tree_to_with`] call. Arc
    /// ids within each node's list appear in ascending order, keeping the
    /// sink-rooted Dijkstra's relaxation order deterministic.
    pub fn reverse_index(&self) -> ReverseIndex {
        let mut inn = vec![Vec::new(); self.out.len()];
        for (i, a) in self.arcs.iter().enumerate() {
            inn[a.to].push(ft_graph::id32(i));
        }
        ReverseIndex { inn }
    }

    /// Full single-*sink* Dijkstra: shortest distances **to** `dst` under
    /// per-arc `lengths`, relaxing incoming arcs via `rev`. Afterwards
    /// `scratch.distance(v)` is the length of the shortest `v → dst` path
    /// and `scratch.parent[v]` holds the first arc of that path (an arc
    /// *leaving* `v`), so [`CapGraph::tree_walk_to`] can replay any node's
    /// path to the sink.
    ///
    /// This is the destination-batched half of the Fleischer FPTAS: traffic
    /// matrices with a few aggregation points (the paper's hot-spot
    /// workload) have thousands of commodities sharing a *destination*, and
    /// one sink tree serves them all. Heap ordering matches
    /// [`CapGraph::shortest_path_tree_with`] (distance, then node index).
    pub fn shortest_path_tree_to_with(
        &self,
        rev: &ReverseIndex,
        dst: usize,
        lengths: &[f64],
        scratch: &mut DijkstraScratch,
    ) {
        scratch.begin(self.out.len());
        scratch.settle(dst, 0.0, u32::MAX);
        scratch.heap.push(HeapArc { d: 0.0, v: dst });
        while let Some(HeapArc { d, v }) = scratch.heap.pop() {
            if d > scratch.dist[v] {
                continue;
            }
            for &ai in &rev.inn[v] {
                let a = self.arcs[ai as usize];
                let nd = d + lengths[ai as usize];
                if nd < scratch.dist_of(a.from) {
                    scratch.settle(a.from, nd, ai);
                    scratch.heap.push(HeapArc { d: nd, v: a.from });
                }
            }
        }
    }

    /// Iterates the arc indices of the sink-tree path from `src` recorded
    /// by the last [`CapGraph::shortest_path_tree_to_with`] run, in source →
    /// destination order. Yields nothing when `src` cannot reach the sink
    /// or is the sink itself.
    pub fn tree_walk_to<'a>(&'a self, scratch: &'a DijkstraScratch, src: usize) -> TreeWalk<'a> {
        let cur = if scratch.reached(src) {
            src
        } else {
            usize::MAX
        };
        TreeWalk {
            scratch,
            arcs: &self.arcs,
            cur,
            toward_head: true,
        }
    }
}

/// Incoming-arc adjacency of a [`CapGraph`]; see
/// [`CapGraph::reverse_index`].
#[derive(Clone, Debug)]
pub struct ReverseIndex {
    inn: Vec<Vec<u32>>,
}

/// Iterator over a shortest-path-tree path: destination → source for
/// source trees ([`CapGraph::tree_walk`]), source → destination for sink
/// trees ([`CapGraph::tree_walk_to`]).
pub struct TreeWalk<'a> {
    scratch: &'a DijkstraScratch,
    arcs: &'a [Arc],
    cur: usize,
    /// Walk direction: `false` follows parent arcs tail-ward (source
    /// trees), `true` head-ward (sink trees).
    toward_head: bool,
}

impl Iterator for TreeWalk<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == usize::MAX {
            return None;
        }
        let ai = self.scratch.parent[self.cur];
        if ai == u32::MAX {
            // reached the tree root
            self.cur = usize::MAX;
            return None;
        }
        let a = ai as usize;
        self.cur = if self.toward_head {
            self.arcs[a].to
        } else {
            self.arcs[a].from
        };
        Some(a)
    }
}

/// Min-heap entry for the arc Dijkstra: minimum distance first, ties broken
/// by node index so the pop order (and with it every FPTAS dual update) is
/// fully deterministic.
#[derive(Clone, Debug, PartialEq)]
struct HeapArc {
    d: f64,
    v: usize,
}

impl Eq for HeapArc {}

impl Ord for HeapArc {
    fn cmp(&self, o: &Self) -> Ordering {
        o.d.total_cmp(&self.d).then_with(|| o.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapArc {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

/// Reusable state for [`CapGraph::shortest_path_with`].
///
/// The FPTAS runs one Dijkstra per phase step — tens of thousands of calls
/// on the same graph — and allocating `dist`/`parent`/heap each time
/// dominated the runtime at k ≥ 16. The scratch keeps those buffers alive
/// across calls:
///
/// * `dist`/`parent` entries are valid only where `stamp[v] == gen`; a new
///   run just bumps `gen` instead of re-filling the arrays (O(1) reset, with
///   a full wipe on the ~4-billion-run stamp wraparound).
/// * the binary heap and the output path vector are `clear()`ed, which
///   retains their capacity.
///
/// After the first call at a given graph size, subsequent calls perform no
/// heap allocation. A scratch may be shared across graphs; `begin` grows the
/// arrays to the largest node count seen.
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    /// Current run id; array entries are valid iff their stamp matches.
    gen: u32,
    /// Per-node stamp of the run that last wrote `dist`/`parent`.
    stamp: Vec<u32>,
    /// Tentative distance per node (valid where stamped).
    dist: Vec<f64>,
    /// Incoming arc on the best known path (valid where stamped;
    /// `u32::MAX` marks the source).
    parent: Vec<u32>,
    /// Priority queue, drained at the start of every run.
    heap: BinaryHeap<HeapArc>,
    /// Arc path of the last successful run, source → destination.
    path: Vec<usize>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    /// Starts a new run over a graph with `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, u32::MAX);
        }
        if self.gen == u32::MAX {
            // stamp wraparound: wipe so old runs can't alias run 1 again
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
        self.path.clear();
    }

    /// Distance of `v` in the current run (`∞` when untouched).
    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.stamp[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// Records `dist`/`parent` for `v` and marks it touched this run.
    #[inline]
    fn settle(&mut self, v: usize, d: f64, parent_arc: u32) {
        self.stamp[v] = self.gen;
        self.dist[v] = d;
        self.parent[v] = parent_arc;
    }

    /// Arc path found by the last successful
    /// [`CapGraph::shortest_path_with`] call, in source → destination order.
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Whether `v` was reached by the last run (early-exit runs only settle
    /// nodes up to the exit; [`CapGraph::shortest_path_tree_with`] settles
    /// every reachable node).
    pub fn reached(&self, v: usize) -> bool {
        v < self.stamp.len() && self.stamp[v] == self.gen && self.dist[v].is_finite()
    }

    /// Shortest-path distance of `v` found by the last run, or `None` when
    /// `v` was not reached.
    pub fn distance(&self, v: usize) -> Option<f64> {
        if self.reached(v) {
            Some(self.dist[v])
        } else {
            None
        }
    }

    /// Number of Dijkstra runs this scratch has been warmed up for (each
    /// `shortest_path_with` / `shortest_path_tree_with` call is one run).
    /// Exposed so tests can assert how many shortest-path computations a
    /// caller actually performed — e.g. that the FPTAS reachability
    /// pre-check does one SSSP per distinct *source*, not per commodity.
    pub fn runs(&self) -> u32 {
        self.gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::Graph;

    #[test]
    fn from_graph_doubles_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        assert_eq!(cg.arc_count(), 4);
        assert_eq!(cg.node_count(), 3);
        assert_eq!(cg.out_capacity(1), 2.0);
        assert_eq!(cg.in_capacity(1), 2.0);
    }

    #[test]
    fn shortest_path_unit_lengths() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let len = vec![1.0; cg.arc_count()];
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path.len(), 2);
        // arcs chain correctly
        assert_eq!(cg.arc(path[0]).from, 0);
        assert_eq!(cg.arc(path[0]).to, cg.arc(path[1]).from);
        assert_eq!(cg.arc(path[1]).to, 2);
    }

    #[test]
    fn shortest_path_weighted_directional() {
        let mut cg = CapGraph::new(3);
        let a01 = cg.add_arc(0, 1, 1.0);
        let a12 = cg.add_arc(1, 2, 1.0);
        let a02 = cg.add_arc(0, 2, 1.0);
        let mut len = vec![0.0; 3];
        len[a01] = 1.0;
        len[a12] = 1.0;
        len[a02] = 5.0;
        let (path, d) = cg.shortest_path(0, 2, &len).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![a01, a12]);
    }

    #[test]
    fn shortest_path_respects_direction() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 1.0);
        let len = vec![1.0];
        assert!(cg.shortest_path(1, 0, &len).is_none());
        assert!(cg.shortest_path(0, 1, &len).is_some());
    }

    #[test]
    fn shortest_path_src_is_dst() {
        let cg = CapGraph::new(1);
        let (path, d) = cg.shortest_path(0, 0, &[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let lengths: Vec<f64> = (0..cg.arc_count()).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut scratch = DijkstraScratch::new();
        for src in 0..5 {
            for dst in 0..5 {
                let fresh = cg.shortest_path(src, dst, &lengths);
                let reused = cg
                    .shortest_path_with(src, dst, &lengths, &mut scratch)
                    .map(|d| (scratch.path().to_vec(), d));
                match (fresh, reused) {
                    (Some((p1, d1)), Some((p2, d2))) => {
                        assert_eq!(p1, p2, "{src}->{dst}");
                        assert_eq!(d1.to_bits(), d2.to_bits(), "{src}->{dst}");
                    }
                    (None, None) => {}
                    other => panic!("fresh/reused disagree for {src}->{dst}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn scratch_unreachable_then_reachable() {
        let mut cg = CapGraph::new(3);
        cg.add_arc(0, 1, 1.0);
        let len = vec![1.0];
        let mut s = DijkstraScratch::new();
        assert!(cg.shortest_path_with(0, 2, &len, &mut s).is_none());
        // stale state from the failed run must not leak into the next one
        assert_eq!(cg.shortest_path_with(0, 1, &len, &mut s), Some(1.0));
        assert_eq!(s.path(), &[0]);
        assert!(cg.shortest_path_with(2, 1, &len, &mut s).is_none());
    }

    #[test]
    fn scratch_grows_across_graphs() {
        let mut s = DijkstraScratch::new();
        let small = CapGraph::from_graph(&Graph::from_edges(2, &[(0, 1)]), 1.0);
        assert!(small.shortest_path_with(0, 1, &[1.0; 2], &mut s).is_some());
        let big = CapGraph::from_graph(&Graph::from_edges(6, &[(0, 1), (1, 5)]), 1.0);
        assert_eq!(big.shortest_path_with(0, 5, &[1.0; 4], &mut s), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut cg = CapGraph::new(2);
        cg.add_arc(0, 1, 0.0);
    }

    #[test]
    fn tree_matches_early_exit_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3), (2, 5)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let lengths: Vec<f64> = (0..cg.arc_count()).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut tree = DijkstraScratch::new();
        for src in 0..6 {
            cg.shortest_path_tree_with(src, &lengths, &mut tree);
            for dst in 0..6 {
                let fresh = cg.shortest_path(src, dst, &lengths);
                match fresh {
                    Some((path, d)) => {
                        assert_eq!(tree.distance(dst), Some(d), "{src}->{dst}");
                        let mut walked: Vec<usize> = cg.tree_walk(&tree, dst).collect();
                        walked.reverse();
                        assert_eq!(walked, path, "{src}->{dst}");
                    }
                    None => assert!(!tree.reached(dst), "{src}->{dst}"),
                }
            }
        }
    }

    #[test]
    fn sink_tree_matches_forward_paths() {
        // distances and path *lengths* to a fixed sink must agree with the
        // forward solver for every source; the sink tree may pick a
        // different equal-length path (its tie-breaks run from the sink),
        // so compare total length, not arc ids
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3), (2, 5)]);
        let cg = CapGraph::from_graph(&g, 1.0);
        let lengths: Vec<f64> = (0..cg.arc_count()).map(|i| 1.0 + (i % 4) as f64).collect();
        let rev = cg.reverse_index();
        let mut tree = DijkstraScratch::new();
        for dst in 0..6 {
            cg.shortest_path_tree_to_with(&rev, dst, &lengths, &mut tree);
            for src in 0..6 {
                match cg.shortest_path(src, dst, &lengths) {
                    Some((_, d)) => {
                        assert_eq!(tree.distance(src), Some(d), "{src}->{dst}");
                        let walked: Vec<usize> = cg.tree_walk_to(&tree, src).collect();
                        let walked_len: f64 = walked.iter().map(|&a| lengths[a]).sum();
                        assert!((walked_len - d).abs() < 1e-12, "{src}->{dst}");
                        // the walk really is a src → dst arc chain
                        if src != dst {
                            assert_eq!(cg.arc(walked[0]).from, src);
                            assert_eq!(cg.arc(*walked.last().unwrap()).to, dst);
                            for w in walked.windows(2) {
                                assert_eq!(cg.arc(w[0]).to, cg.arc(w[1]).from);
                            }
                        }
                    }
                    None => assert!(!tree.reached(src), "{src}->{dst}"),
                }
            }
        }
    }

    #[test]
    fn tree_walk_unreached_and_source_yield_nothing() {
        let mut cg = CapGraph::new(3);
        cg.add_arc(0, 1, 1.0);
        let mut s = DijkstraScratch::new();
        cg.shortest_path_tree_with(0, &[1.0], &mut s);
        assert!(s.reached(1) && !s.reached(2));
        assert_eq!(s.distance(2), None);
        assert_eq!(cg.tree_walk(&s, 2).count(), 0);
        assert_eq!(cg.tree_walk(&s, 0).count(), 0);
        assert_eq!(cg.tree_walk(&s, 1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn scratch_counts_runs() {
        let cg = CapGraph::from_graph(&Graph::from_edges(3, &[(0, 1), (1, 2)]), 1.0);
        let ones = vec![1.0; cg.arc_count()];
        let mut s = DijkstraScratch::new();
        assert_eq!(s.runs(), 0);
        let _ = cg.shortest_path_with(0, 2, &ones, &mut s);
        cg.shortest_path_tree_with(1, &ones, &mut s);
        assert_eq!(s.runs(), 2);
    }
}
