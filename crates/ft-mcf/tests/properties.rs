//! Property-based validation of the flow solvers: the FPTAS is sandwiched
//! between feasibility (≤ exact optimum, ≤ cut bounds) and its
//! approximation guarantee (≥ (1 − 3ε) · exact optimum).

use ft_graph::Graph;
use ft_mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_exact,
    max_concurrent_flow_reference, node_cut_upper_bound, CapGraph, FptasOptions,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    edges: Vec<(u32, u32)>,
    demands: Vec<(usize, usize, f64)>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (3u32..8).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0u32..1000, (n - 1) as usize);
        let extra = proptest::collection::vec((0u32..n, 0u32..n), 0..6);
        let demands = proptest::collection::vec((0u32..n, 0u32..n, 1u32..4), 1..5);
        (tree, extra, demands).prop_map(move |(tree, extra, demands)| {
            let mut edges: Vec<(u32, u32)> = tree
                .iter()
                .enumerate()
                .map(|(i, &r)| (r % (i as u32 + 1), i as u32 + 1))
                .collect();
            for (a, b) in extra {
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let demands = demands
                .into_iter()
                .map(|(s, t, d)| (s as usize, t as usize, d as f64))
                .collect();
            Instance { n, edges, demands }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fptas_sandwiched_by_exact(inst in arb_instance()) {
        let g = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 1.0);
        let cs = aggregate_commodities(inst.demands.clone());
        prop_assume!(!cs.is_empty());
        let eps = 0.08;
        let exact = max_concurrent_flow_exact(&g, &cs).unwrap();
        let approx = max_concurrent_flow(&g, &cs, FptasOptions::with_epsilon(eps)).unwrap();
        prop_assert!(approx.lambda <= exact + 1e-6,
                     "approx {} exceeds exact {}", approx.lambda, exact);
        prop_assert!(approx.lambda >= (1.0 - 3.0 * eps) * exact - 1e-9,
                     "approx {} below guarantee of exact {}", approx.lambda, exact);
        // and both respect the node-cut bound
        let cut = node_cut_upper_bound(&g, &cs);
        prop_assert!(exact <= cut + 1e-6);
        prop_assert!(approx.lambda <= cut + 1e-6);
        // certified utilization never exceeds capacity
        for &u in &approx.utilization {
            prop_assert!(u <= 1.0 + 1e-9);
        }
    }

    /// The source-batched solver against the per-commodity reference loop:
    /// both are certified-feasible (1 − 3ε)-approximations, so each must be
    /// ≥ (1 − 3ε)·exact and they must agree within the joint band — the
    /// batching (one tree per source, (1 + ε)-approximate paths) cannot
    /// cost more than the ε guarantee.
    #[test]
    fn batched_matches_reference_within_epsilon(inst in arb_instance()) {
        let g = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 1.0);
        let cs = aggregate_commodities(inst.demands.clone());
        prop_assume!(!cs.is_empty());
        let eps = 0.08;
        let opts = FptasOptions::with_epsilon(eps);
        let batched = max_concurrent_flow(&g, &cs, opts).unwrap();
        let reference = max_concurrent_flow_reference(&g, &cs, opts).unwrap();
        prop_assert!(!batched.budget_exhausted && !reference.budget_exhausted);
        let (b, r) = (batched.lambda, reference.lambda);
        prop_assert!(b >= (1.0 - 3.0 * eps) * r - 1e-9,
                     "batched {b} below ε band of reference {r}");
        prop_assert!(r >= (1.0 - 3.0 * eps) * b - 1e-9,
                     "reference {r} below ε band of batched {b}");
        // and the batched result still sandwiches against the exact LP
        let exact = max_concurrent_flow_exact(&g, &cs).unwrap();
        prop_assert!(b <= exact + 1e-6, "batched {b} exceeds exact {exact}");
        prop_assert!(b >= (1.0 - 3.0 * eps) * exact - 1e-9,
                     "batched {b} below guarantee of exact {exact}");
    }

    /// λ scales inversely with uniform demand scaling.
    #[test]
    fn demand_scaling_inverse(inst in arb_instance(), scale in 1u32..5) {
        let g = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 1.0);
        let cs = aggregate_commodities(inst.demands.clone());
        prop_assume!(!cs.is_empty());
        let scaled = aggregate_commodities(
            inst.demands.iter().map(|&(s, t, d)| (s, t, d * scale as f64)));
        let l1 = max_concurrent_flow_exact(&g, &cs).unwrap();
        let l2 = max_concurrent_flow_exact(&g, &scaled).unwrap();
        prop_assert!((l1 - l2 * scale as f64).abs() < 1e-5 * (1.0 + l1),
                     "{l1} vs {} × {scale}", l2);
    }

    /// Adding capacity (doubling all links) never hurts: λ at least
    /// doubles... no — exactly doubles, since the polytope scales.
    #[test]
    fn capacity_scaling_linear(inst in arb_instance()) {
        let base = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 1.0);
        let doubled = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 2.0);
        let cs = aggregate_commodities(inst.demands.clone());
        prop_assume!(!cs.is_empty());
        let l1 = max_concurrent_flow_exact(&base, &cs).unwrap();
        let l2 = max_concurrent_flow_exact(&doubled, &cs).unwrap();
        prop_assert!((l2 - 2.0 * l1).abs() < 1e-5 * (1.0 + l2));
    }

    /// Removing a commodity never decreases λ.
    #[test]
    fn fewer_commodities_monotone(inst in arb_instance()) {
        let g = CapGraph::from_graph(&Graph::from_edges(inst.n as usize, &inst.edges), 1.0);
        let cs = aggregate_commodities(inst.demands.clone());
        prop_assume!(cs.len() >= 2);
        let full = max_concurrent_flow_exact(&g, &cs).unwrap();
        let reduced = max_concurrent_flow_exact(&g, &cs[..cs.len() - 1]).unwrap();
        prop_assert!(reduced >= full - 1e-6);
    }
}
