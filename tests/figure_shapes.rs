//! Miniature end-to-end versions of the paper's figures, run at small k so
//! they fit in the test suite. The full harness lives in
//! `crates/ft-experiments`; these tests pin the *shape* results the paper
//! reports so regressions in any crate of the pipeline fail loudly.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::metrics::path_length::{average_intra_pod_path_length, average_server_path_length};
use flat_tree::metrics::throughput::{throughput, ThroughputOptions};
use flat_tree::topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, TwoStageParams,
};
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn flat(k: usize, mode: &Mode) -> flat_tree::topo::Network {
    FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
        .unwrap()
        .materialize(mode)
        .unwrap()
}

/// Figure 5 shape: flat-tree global mode sits between fat-tree and the
/// random graph, within 10% of the latter.
#[test]
fn fig5_shape_small_k() {
    for k in [8, 10] {
        let fat = average_server_path_length(&fat_tree(k).unwrap());
        let rg = average_server_path_length(&jellyfish_matching_fat_tree(k, 1).unwrap());
        let ft = average_server_path_length(&flat(k, &Mode::GlobalRandom));
        assert!(ft < fat, "k = {k}: flat {ft} !< fat {fat}");
        assert!(
            ft >= rg * 0.98,
            "k = {k}: flat {ft} implausibly beats rg {rg}"
        );
        assert!(
            (ft - rg) / rg <= 0.10,
            "k = {k}: flat {ft} not within 10% of rg {rg}"
        );
    }
}

/// Figure 6 shape: in-Pod, flat-tree-local ≲ two-stage < fat-tree < rg.
#[test]
fn fig6_shape_small_k() {
    let k = 10;
    let pod = k * k / 4;
    let ftl = average_intra_pod_path_length(&flat(k, &Mode::LocalRandom), pod);
    let fat = average_intra_pod_path_length(&fat_tree(k).unwrap(), pod);
    let rg = average_intra_pod_path_length(&jellyfish_matching_fat_tree(k, 1).unwrap(), pod);
    let ts = average_intra_pod_path_length(
        &two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 1).unwrap(),
        pod,
    );
    assert!(ftl < fat, "flat {ftl} !< fat {fat}");
    assert!(fat < rg, "fat {fat} !< rg {rg}");
    assert!(ftl <= ts * 1.02, "flat {ftl} not ≤ two-stage {ts} (+2%)");
}

/// Figure 7 shape: hot-spot throughput — flat-tree ≥ 1.2× fat-tree and
/// within 20% of the random graph.
#[test]
fn fig7_shape_small_k() {
    let k = 8;
    let spec = WorkloadSpec {
        pattern: TrafficPattern::HotSpot,
        cluster_size: 1000,
        locality: Locality::Strong,
    };
    let opts = ThroughputOptions::fptas(0.1);
    let lam = |net: &flat_tree::topo::Network| {
        throughput(net, &generate(net, &spec, 2), opts)
            .unwrap()
            .lambda
    };
    let fat = lam(&fat_tree(k).unwrap());
    let ftg = lam(&flat(k, &Mode::GlobalRandom));
    let rg = lam(&jellyfish_matching_fat_tree(k, 2).unwrap());
    assert!(ftg >= 1.2 * fat, "flat {ftg} vs fat {fat}");
    assert!((ftg - rg).abs() / rg <= 0.2, "flat {ftg} vs rg {rg}");
}

/// Figure 8 shape: all-to-all throughput — flat-tree-local competitive
/// with the two-stage RG; fat-tree placement-sensitive.
#[test]
fn fig8_shape_small_k() {
    let k = 8;
    let opts = ThroughputOptions::fptas(0.1);
    let lam = |net: &flat_tree::topo::Network, locality| {
        let spec = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 20,
            locality,
        };
        throughput(net, &generate(net, &spec, 2), opts)
            .unwrap()
            .lambda
    };
    let ftl = flat(k, &Mode::LocalRandom);
    let ts = two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 2).unwrap();
    assert!(
        lam(&ftl, Locality::Strong) >= 0.95 * lam(&ts, Locality::Strong),
        "flat-tree-local must be competitive with two-stage RG at small k"
    );
    let fat = fat_tree(k).unwrap();
    let fat_strong = lam(&fat, Locality::Strong);
    let fat_weak = lam(&fat, Locality::Weak);
    assert!(
        fat_strong >= fat_weak * 0.99,
        "fat-tree should not improve under fragmentation: {fat_strong} vs {fat_weak}"
    );
}

/// §3.2 shape: the profiling sweep finds (m = k/8, n = 2k/8) at or near
/// the optimum.
#[test]
fn profiling_recovers_paper_choice() {
    let r = flat_tree::core::profile_mn(8, 1).unwrap();
    let paper = r.points.iter().find(|p| p.m == 1 && p.n == 2).unwrap();
    assert!(paper.apl <= r.best.apl * 1.05);
}
