//! Consistency between the flow-level simulator and the LP-optimal
//! throughput: no routed, fairly-shared schedule can beat the maximum
//! concurrent flow.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::metrics::throughput::{throughput, ThroughputOptions};
use flat_tree::sim::{flows_from_matrix, FlowSpec, RouterPolicy, Simulator};
use flat_tree::topo::fat_tree;
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

/// The max concurrent flow λ* maximizes the minimum per-flow rate over all
/// routings, so the simulator's *slowest* flow can never sustain more than
/// λ* — its completion time for a size-S transfer is at least S/λ*.
#[test]
fn slowest_simulated_flow_bounded_by_lp() {
    for (net, policy) in [
        (fat_tree(6).unwrap(), RouterPolicy::Ecmp),
        (
            FlatTree::new(FlatTreeConfig::for_fat_tree_k(6).unwrap())
                .unwrap()
                .materialize(&Mode::GlobalRandom)
                .unwrap(),
            RouterPolicy::Ksp(8),
        ),
    ] {
        let spec = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 27,
            locality: Locality::Strong,
        };
        let tm = generate(&net, &spec, 3);
        // LP optimum (upper bound on any min-rate)
        let lambda = throughput(&net, &tm, ThroughputOptions::fptas(0.05))
            .unwrap()
            .lambda;
        // simulate the same demands as unit-size flows
        let flows = flows_from_matrix(&tm, 1.0, 0.0);
        let report = Simulator::new(&net, policy).run(&flows, &[], 1e9);
        assert_eq!(report.unfinished(), 0);
        // makespan ≥ size / λ*  (the slowest flow can't beat the optimum;
        // λ from the FPTAS is a lower bound on λ*, so divide by the upper
        // bound λ/(1−3ε) for a safe comparison)
        let lambda_upper = lambda / (1.0 - 3.0 * 0.05);
        let min_time = 1.0 / lambda_upper;
        assert!(
            report.makespan >= min_time * 0.99,
            "{}: makespan {} beats the LP bound {}",
            net.name(),
            report.makespan,
            min_time
        );
    }
}

/// On an idle network a single flow gets the full path rate: FCT == size.
#[test]
fn single_flow_saturates_path() {
    let net = fat_tree(6).unwrap();
    let servers: Vec<_> = net.servers().collect();
    let flows = [FlowSpec {
        src: servers[0],
        dst: servers[servers.len() - 1],
        size: 7.5,
        start: 0.0,
    }];
    let report = Simulator::new(&net, RouterPolicy::Ecmp).run(&flows, &[], 1e9);
    assert_eq!(report.flows[0].completion, Some(7.5));
}

/// Convertibility pays off in the simulator too, not just in the LP: the
/// hot-spot workload's *mean* flow completion time improves on the global
/// random graph. (Makespan is tail-dominated by whichever hashed path the
/// slowest flow draws, so the mean is the stable metric here.)
#[test]
fn conversion_speeds_up_hotspot_workload() {
    let k = 8;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let spec = WorkloadSpec {
        pattern: TrafficPattern::HotSpot,
        cluster_size: 1000,
        locality: Locality::Strong,
    };
    let mut mean_fcts = Vec::new();
    for (mode, policy) in [
        (Mode::Clos, RouterPolicy::Ecmp),
        (Mode::GlobalRandom, RouterPolicy::Ksp(8)),
    ] {
        let net = ft.materialize(&mode).unwrap();
        let tm = generate(&net, &spec, 6);
        let flows = flows_from_matrix(&tm, 1.0, 0.0);
        let report = Simulator::new(&net, policy).run(&flows, &[], 1e9);
        assert_eq!(report.unfinished(), 0, "{mode:?}");
        mean_fcts.push(report.mean_fct(&flows));
    }
    assert!(
        mean_fcts[1] < mean_fcts[0],
        "global-RG mean FCT {} should beat Clos {}",
        mean_fcts[1],
        mean_fcts[0]
    );
}
