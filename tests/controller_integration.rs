//! End-to-end control-plane integration: conversions, routing and
//! forwarding across crates.

use flat_tree::control::controller::ActiveRouting;
use flat_tree::control::{compile_rules, Controller, EcmpRoutes, Zone};
use flat_tree::core::{FlatTreeConfig, Mode, PodMode};
use flat_tree::graph::NodeId;

#[test]
fn conversion_cycle_preserves_routability() {
    let mut ctl = Controller::new(FlatTreeConfig::for_fat_tree_k(6).unwrap()).unwrap();
    let cycle = [
        Mode::GlobalRandom,
        Mode::LocalRandom,
        Mode::Clos,
        Mode::GlobalRandom,
        Mode::Clos,
    ];
    for mode in cycle {
        ctl.convert(mode.clone()).unwrap();
        let net = ctl.network();
        net.validate().unwrap();
        // every server pair must be routable under the mode's router
        let servers: Vec<NodeId> = net.servers().collect();
        let pairs = [
            (servers[0], servers[servers.len() - 1]),
            (servers[3], servers[servers.len() / 2]),
        ];
        match ctl.routing() {
            ActiveRouting::Ecmp(r) => {
                for (a, b) in pairs {
                    let p = r
                        .path(net.attachment(a), net.attachment(b), 5)
                        .expect("ECMP path exists");
                    assert!(p.hops() >= 2);
                }
            }
            ActiveRouting::Ksp(r) => {
                for (a, b) in pairs {
                    let paths = r.paths(net.attachment(a), net.attachment(b));
                    assert!(!paths.is_empty(), "KSP must find paths in {mode:?}");
                    assert!(paths.len() <= 8);
                }
            }
        }
    }
    assert_eq!(ctl.conversions(), 5);
}

#[test]
fn forwarding_tables_work_after_zone_reorganization() {
    let mut ctl = Controller::new(FlatTreeConfig::for_fat_tree_k(8).unwrap()).unwrap();
    ctl.organize_zones(&[
        Zone::new("a", 0..4, PodMode::GlobalRandom),
        Zone::new("b", 4..8, PodMode::LocalRandom),
    ])
    .unwrap();
    let net = ctl.network();
    // ECMP-style rules still route the hybrid topology (shortest paths are
    // well-defined on any connected graph)
    let routes = EcmpRoutes::compute(net);
    let tables = compile_rules(net, &routes);
    let s = net.num_switches() as u32;
    for (src, dst) in [(0u32, s - 1), (5, s / 2), (s - 3, 2)] {
        let path =
            flat_tree::control::rules::forward(&tables, NodeId(src), NodeId(dst), 11).unwrap();
        assert_eq!(path.first(), Some(&NodeId(src)));
        assert_eq!(path.last(), Some(&NodeId(dst)));
        assert_eq!(
            path.len() as u32 - 1,
            routes.distance(NodeId(src), NodeId(dst))
        );
    }
}

#[test]
fn plans_compose_transitively() {
    // plan(A→B) + plan(B→C) touches at least every converter of plan(A→C)
    let ctl = Controller::new(FlatTreeConfig::for_fat_tree_k(8).unwrap()).unwrap();
    let ft = ctl.flat_tree();
    let a = ft.resolve(&Mode::Clos).unwrap();
    let b = ft.resolve(&Mode::LocalRandom).unwrap();
    let c = ft.resolve(&Mode::GlobalRandom).unwrap();
    let ab = flat_tree::control::plan_transition(ft, &a, &b).unwrap();
    let bc = flat_tree::control::plan_transition(ft, &b, &c).unwrap();
    let ac = flat_tree::control::plan_transition(ft, &a, &c).unwrap();
    assert!(ab.converter_ops() + bc.converter_ops() >= ac.converter_ops());
    // and link churn is consistent: A→C churn ≤ A→B + B→C churn
    assert!(ac.links_added.len() <= ab.links_added.len() + bc.links_added.len());
}

#[test]
fn advisor_matches_evaluated_best_mode() {
    use flat_tree::control::advisor::{recommend_mode, summarize};
    use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};
    let ctl = Controller::new(FlatTreeConfig::for_fat_tree_k(10).unwrap()).unwrap();
    let net = ctl.network();
    // small, pod-local clusters → advisor should say LocalRandom
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 20,
        locality: Locality::Weak,
    };
    let tm = generate(net, &spec, 4);
    let rec = recommend_mode(&summarize(net, &tm));
    assert_eq!(rec, Mode::LocalRandom);
}
