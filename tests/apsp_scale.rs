//! Correctness gate for the symmetry-deduplicated APSP (DESIGN.md §15):
//! on every k and operating mode where a full table is cheap, the deduped
//! table must agree with the full bitset-kernel matrix entry for entry —
//! through `get`, through `expand`, and through the bench checksum. Clos
//! mode additionally pins the class count to the fat-tree prediction
//! (k + 1: one edge class, k/2 aggregation classes, k/2 core classes);
//! randomized modes are allowed to degrade all the way to singleton
//! classes but never to an inexact answer.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode, PodMode};
use flat_tree::graph::{Csr, DistMatrix};
use flat_tree::topo::{DedupedApsp, Network};

/// Zone layouts exercised per k: the three uniform modes plus a mixed
/// hybrid assignment (one `PodMode` per Pod, cycling through all three).
fn modes(pods: usize) -> Vec<Mode> {
    let cycle = [PodMode::Clos, PodMode::GlobalRandom, PodMode::LocalRandom];
    let hybrid: Vec<PodMode> = (0..pods).map(|p| cycle[p % cycle.len()]).collect();
    vec![
        Mode::Clos,
        Mode::GlobalRandom,
        Mode::LocalRandom,
        Mode::Hybrid(hybrid),
    ]
}

/// Full-table-vs-deduped agreement for one materialized network.
fn assert_dedup_exact(net: &Network, label: &str) {
    let csr = Csr::from_graph(&net.switch_graph());
    let full = DistMatrix::compute_csr(&csr).unwrap();
    let dd = DedupedApsp::compute(net).unwrap();

    let n = net.num_switches();
    assert!(dd.classes().class_count() <= n, "{label}: class count");
    for v in 0..n {
        for w in 0..n {
            assert_eq!(
                dd.get(v, w),
                full.get(v, w),
                "{label}: deduped distance diverged at pair ({v}, {w})"
            );
        }
    }

    let expanded = dd.expand().unwrap();
    for v in 0..n {
        assert_eq!(expanded.row(v), full.row(v), "{label}: expanded row {v}");
    }
    assert_eq!(dd.expanded_checksum(), full.checksum(), "{label}: checksum");
}

#[test]
fn deduped_apsp_matches_full_across_modes() {
    for k in [4usize, 8] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        for mode in modes(k) {
            let net = ft.materialize(&mode).unwrap();
            assert_dedup_exact(&net, &format!("k={k} {mode:?}"));
        }
    }
}

/// k = 16 is the largest full-vs-deduped sweep that stays cheap in debug
/// builds; uniform modes only (the hybrid case is covered at k ≤ 8).
#[test]
fn deduped_apsp_matches_full_k16() {
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(16).unwrap()).unwrap();
    for mode in [Mode::Clos, Mode::GlobalRandom] {
        let net = ft.materialize(&mode).unwrap();
        assert_dedup_exact(&net, &format!("k=16 {mode:?}"));
    }
}

/// Clos mode reproduces the fat-tree exactly, so the symmetry classes must
/// collapse to the predicted k + 1 (1 edge + k/2 aggregation + k/2 core).
#[test]
fn clos_mode_class_count_matches_fat_tree_prediction() {
    for k in [4usize, 8, 16] {
        let net = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
            .unwrap()
            .materialize(&Mode::Clos)
            .unwrap();
        let dd = DedupedApsp::compute(&net).unwrap();
        assert_eq!(
            dd.classes().class_count(),
            k + 1,
            "k={k}: Clos-mode classes"
        );
    }
}
