//! Regression coverage for the source-batched FPTAS at bench scale: the
//! k = 32 flat-tree instance (11 200 commodities) used to return a silent
//! λ = 0 because the per-commodity solver exhausted any step budget inside
//! phase 0. Post-batching it must certify a strictly positive λ within the
//! bench budget and *say so* when the budget trips.

use std::time::Instant;

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::mcf::{
    aggregate_commodities, max_concurrent_flow, CapGraph, Commodity, FptasOptions,
};
use flat_tree::topo::Network;
use flat_tree::workload::{generate, Locality, WorkloadSpec};

/// The exact instance `ftctl bench` times at k = 32: flat-tree in global
/// random-graph mode, hot-spot workload with no locality, seed 1.
fn bench_instance(k: usize) -> (Network, Vec<Commodity>) {
    let net = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
        .unwrap()
        .materialize(&Mode::GlobalRandom)
        .unwrap();
    let tm = generate(&net, &WorkloadSpec::hotspot(Locality::None), 1);
    let commodities = aggregate_commodities(tm.switch_triples(&net));
    (net, commodities)
}

#[test]
fn k32_bench_instance_certifies_positive_lambda_within_budget() {
    let (net, commodities) = bench_instance(32);
    assert!(
        commodities.len() > 10_000,
        "bench instance shrank: {} commodities",
        commodities.len()
    );
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let t0 = Instant::now();
    let sol = max_concurrent_flow(
        &cg,
        &commodities,
        FptasOptions {
            epsilon: 0.15,
            max_steps: Some(3_000),
        },
    )
    .unwrap();
    eprintln!(
        "k=32 bounded: lambda={} steps={} phases={} exhausted={} in {:?}",
        sol.lambda,
        sol.steps,
        sol.phases,
        sol.budget_exhausted,
        t0.elapsed()
    );
    // The pre-batching solver returned λ = 0 here (and did not say why).
    assert!(
        sol.lambda > 0.0,
        "batched FPTAS must certify λ > 0 on the k=32 bench instance"
    );
    // The budget-rescue gap termination arms at half the budget and
    // certifies convergence well before the 3 000 steps trip.
    assert!(
        !sol.budget_exhausted,
        "k=32 must converge within the bench budget, not merely survive it"
    );
    // λ stays a valid lower bound: no arc may end up over capacity.
    assert!(sol.utilization.iter().all(|&u| u <= 1.0 + 1e-9));
}

/// Halving the bench budget must still end in a *certified* stop — the
/// rescue arms earlier and trades a little λ for it — never in a tripped
/// budget. (Unbudgeted runs go to the textbook `D(l) ≥ 1` termination and
/// take minutes at this scale; that path is covered at smaller k by the
/// ft-mcf unit tests and the ft-sim cross-check.)
#[test]
fn k32_bench_instance_rescued_by_tighter_budget() {
    let (net, commodities) = bench_instance(32);
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let t0 = Instant::now();
    let sol = max_concurrent_flow(
        &cg,
        &commodities,
        FptasOptions {
            epsilon: 0.15,
            max_steps: Some(1_500),
        },
    )
    .unwrap();
    eprintln!(
        "k=32 tight: lambda={} steps={} phases={} exhausted={} in {:?}",
        sol.lambda,
        sol.steps,
        sol.phases,
        sol.budget_exhausted,
        t0.elapsed()
    );
    assert!(
        !sol.budget_exhausted,
        "the rescue must certify a stop before the tighter budget trips"
    );
    assert!(sol.steps <= 1_500);
    // Rescued λ is certified ≥ (1 − 3ε)·OPT; empirically it lands within a
    // few percent of the converged 0.0233.
    assert!(sol.lambda > 0.02, "rescued λ too low: {}", sol.lambda);
}
