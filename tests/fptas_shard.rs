//! Cross-crate coverage for the sharded / symmetry-aggregated FPTAS
//! stack: the round-sharded engine against the batched baseline at bench
//! scale, the orbit quotient against the full commodity list across all
//! four operating modes, the singleton degradation on asymmetric
//! layouts, and the des solver stopwatch the storm bench relies on.
//!
//! Certification contract used throughout: every engine returns a λ that
//! is primal feasible (a true lower bound) and, at convergence, within
//! `(1 − 3ε)` of optimal — so two engines on one instance must land
//! within a `(1 − 3ε)` sandwich of each other.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::mcf::{
    aggregate_commodities, max_concurrent_flow, max_concurrent_flow_sharded, CapGraph, Commodity,
    FptasOptions, ShardConfig,
};
use flat_tree::metrics::path_length::SwitchDistances;
use flat_tree::metrics::throughput::{throughput_all_to_all, SolverKind, ThroughputOptions};
use flat_tree::sim::{flows_with_arrivals, DesSimulator, RouterPolicy};
use flat_tree::topo::Network;
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

const EPS: f64 = 0.15;

/// Both λ are certified lower bounds within (1 − 3ε) of one optimum.
fn assert_band(a: f64, b: f64, what: &str) {
    let floor = 1.0 - 3.0 * EPS;
    assert!(a > 0.0 && b > 0.0, "{what}: λ must be positive ({a}, {b})");
    let ratio = a / b;
    assert!(
        (floor..=1.0 / floor).contains(&ratio),
        "{what}: λ {a} vs {b} outside the (1 − 3ε) sandwich (ratio {ratio})"
    );
}

fn mode_net(k: usize, mode: &Mode) -> Network {
    FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap())
        .unwrap()
        .materialize(mode)
        .unwrap()
}

/// The `ftctl bench` hot-spot instance (global random graph, seed 1).
fn bench_instance(k: usize) -> (Network, Vec<Commodity>) {
    let net = mode_net(k, &Mode::GlobalRandom);
    let tm = generate(&net, &WorkloadSpec::hotspot(Locality::None), 1);
    let commodities = aggregate_commodities(tm.switch_triples(&net));
    (net, commodities)
}

/// The sharded engine must agree with the batched baseline on the k = 16
/// bench instance (certified band, both converged) and must return the
/// exact same bits no matter how many workers built the trees — the
/// round-snapshot schedule is worker-count-independent by construction.
#[test]
fn sharded_matches_batched_at_bench_scale_and_is_thread_invariant() {
    let (net, commodities) = bench_instance(16);
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let opts = FptasOptions {
        epsilon: EPS,
        max_steps: Some(3_000),
    };
    let batched = max_concurrent_flow(&cg, &commodities, opts).unwrap();
    assert!(!batched.budget_exhausted);

    let dist = SwitchDistances::compute(&net);
    let oracle = move |a: usize, b: usize| dist.switch_distance(a, b);
    let mut solutions = Vec::new();
    for threads in [1usize, 4] {
        let cfg = ShardConfig {
            threads,
            warm: Some(&oracle),
        };
        let sol = max_concurrent_flow_sharded(&cg, &commodities, opts, &cfg).unwrap();
        assert!(
            !sol.budget_exhausted,
            "threads={threads} tripped the budget"
        );
        assert!(sol.utilization.iter().all(|&u| u <= 1.0 + 1e-9));
        solutions.push(sol);
    }
    assert_eq!(
        solutions[0].lambda.to_bits(),
        solutions[1].lambda.to_bits(),
        "sharded λ must be bit-identical across worker counts"
    );
    assert_eq!(solutions[0].steps, solutions[1].steps);
    assert_eq!(solutions[0].phases, solutions[1].phases);
    assert_band(
        solutions[0].lambda,
        batched.lambda,
        "sharded vs batched k=16",
    );
}

/// Uniform all-to-all through every operating mode, aggregated engine vs
/// the full-commodity sharded engine. On the Clos layout the symmetry
/// quotient must actually engage (a real orbit collapse); on the
/// asymmetric random layouts it degrades to singleton classes and falls
/// back to the identical sharded solve — either way the λs must sit in
/// one certified band.
#[test]
fn aggregated_matches_full_across_modes() {
    for k in [4usize, 8] {
        let modes = [
            Mode::Clos,
            Mode::LocalRandom,
            Mode::GlobalRandom,
            Mode::two_zone(k, k / 2),
        ];
        for mode in &modes {
            let net = mode_net(k, mode);
            let agg = throughput_all_to_all(
                &net,
                ThroughputOptions::fptas_with(EPS, SolverKind::Aggregated),
            )
            .unwrap();
            let full = throughput_all_to_all(
                &net,
                ThroughputOptions::fptas_with(EPS, SolverKind::Sharded),
            )
            .unwrap();
            assert_eq!(agg.commodities, full.commodities, "k={k} {mode:?}");
            if *mode == Mode::Clos {
                let reps = agg
                    .aggregated
                    .expect("symmetry aggregation must engage on the Clos fat-tree");
                assert!(
                    reps < agg.commodities,
                    "k={k}: {reps} orbits is no collapse of {} commodities",
                    agg.commodities
                );
            }
            match agg.aggregated {
                Some(_) => assert_band(
                    agg.lambda,
                    full.lambda,
                    &format!("aggregated vs sharded k={k} {mode:?}"),
                ),
                // Identity degradation: the very same sharded solve ran,
                // so the bits must match, not just the band.
                None => assert_eq!(
                    agg.lambda.to_bits(),
                    full.lambda.to_bits(),
                    "k={k} {mode:?}: identity fallback must be bit-identical"
                ),
            }
        }
    }
}

/// The k = 16 tier of the mode sweep needs an optimized build (the full
/// all-to-all commodity list is 16 k pairs); debug runs cover k ∈ {4, 8}.
#[cfg(not(debug_assertions))]
#[test]
fn aggregated_matches_full_at_k16_clos() {
    let net = mode_net(16, &Mode::Clos);
    let agg = throughput_all_to_all(
        &net,
        ThroughputOptions::fptas_with(EPS, SolverKind::Aggregated),
    )
    .unwrap();
    let full = throughput_all_to_all(
        &net,
        ThroughputOptions::fptas_with(EPS, SolverKind::Sharded),
    )
    .unwrap();
    let reps = agg.aggregated.expect("aggregation must engage at k=16");
    assert!(reps < agg.commodities);
    assert_band(agg.lambda, full.lambda, "aggregated vs sharded k=16 clos");
}

/// A converted (zone-hybrid) layout breaks the fabric's symmetry: the
/// aggregation must refuse to merge anything rather than produce a wrong
/// quotient, and the fallback must be the byte-for-byte sharded answer.
#[test]
fn converted_layout_degrades_to_singleton_fallback() {
    let net = mode_net(4, &Mode::two_zone(4, 2));
    let agg = throughput_all_to_all(
        &net,
        ThroughputOptions::fptas_with(EPS, SolverKind::Aggregated),
    )
    .unwrap();
    let full = throughput_all_to_all(
        &net,
        ThroughputOptions::fptas_with(EPS, SolverKind::Sharded),
    )
    .unwrap();
    assert!(
        agg.aggregated.is_none(),
        "a half-converted layout has no verified orbits to merge"
    );
    assert_eq!(agg.lambda.to_bits(), full.lambda.to_bits());
}

/// The storm bench subtracts [`DesReport::solver_ns`] from the wall time
/// to report engine-only events/s. The stopwatch must actually tick on a
/// workload that re-allocates, and must stay out of the determinism
/// digest — two runs agree on the checksum even though their solver
/// times differ.
#[test]
fn des_solver_stopwatch_ticks_and_stays_out_of_checksum() {
    let net = mode_net(4, &Mode::Clos);
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::None,
    };
    let tm = generate(&net, &spec, 1);
    let flows = flows_with_arrivals(&tm, 1.0, 0.5, 2, 1);
    let sim = DesSimulator::new(&net, RouterPolicy::Ecmp);
    let a = sim.run(&flows, &[], f64::INFINITY).unwrap();
    let b = sim.run(&flows, &[], f64::INFINITY).unwrap();
    assert!(a.reallocations > 0);
    assert!(
        a.solver_ns > 0,
        "re-allocations ran, the solver stopwatch must have ticked"
    );
    assert_eq!(
        a.completion_checksum(),
        b.completion_checksum(),
        "wall-clock measurement must not leak into the determinism digest"
    );
}
