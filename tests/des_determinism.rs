//! End-to-end determinism of the ft-des simulation engine (DESIGN.md §14)
//! and its equivalence to the legacy next-transition simulator.
//!
//! The conversion scenario must be bit-identical — per-flow completion
//! bits, re-route counters, and the full JSONL trace — across
//! `FT_THREADS` settings (single test function: the env var is
//! process-global, so the two settings run sequentially inside it). On a
//! failure-free, conversion-free trace the DES engine must reproduce the
//! legacy simulator's completion times within 1e-9.

use flat_tree::control::plan_transition;
use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::sim::{
    flows_with_arrivals, ConversionEvent, DesReport, DesSimulator, FlowSpec, RouterPolicy,
    Simulator, TopoEvent,
};
use flat_tree::topo::Network;
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn fixture() -> (Network, Vec<FlowSpec>, Vec<TopoEvent>) {
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
    let net = ft.materialize(&Mode::Clos).unwrap();
    let from = ft.resolve(&Mode::Clos).unwrap();
    let to = ft.resolve(&Mode::GlobalRandom).unwrap();
    let plan = plan_transition(&ft, &from, &to).unwrap();
    let topo = vec![TopoEvent::Convert(ConversionEvent::from_plan(
        1.0,
        0.5,
        &plan,
        Some(RouterPolicy::Ksp(8)),
    ))];
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::None,
    };
    let tm = generate(&net, &spec, 1);
    let flows = flows_with_arrivals(&tm, 8.0, 0.5, 2, 1);
    (net, flows, topo)
}

fn run_conversion() -> DesReport {
    let (net, flows, topo) = fixture();
    DesSimulator::new(&net, RouterPolicy::Ecmp)
        .run_traced(&flows, &topo, 1e9)
        .unwrap()
}

#[test]
fn conversion_scenario_bit_identical_across_thread_counts() {
    std::env::set_var("FT_THREADS", "1");
    let r1 = run_conversion();
    std::env::set_var("FT_THREADS", "4");
    let r4 = run_conversion();
    std::env::remove_var("FT_THREADS");

    assert!(r1.conversions == 1 && r1.conversion_reroutes > 0, "{r1:?}");
    assert_eq!(
        r1.completion_checksum(),
        r4.completion_checksum(),
        "completion digest diverged across thread counts"
    );
    for (a, b) in r1.flows.iter().zip(&r4.flows) {
        assert_eq!(
            a.completion.map(f64::to_bits),
            b.completion.map(f64::to_bits),
            "flow {} completion diverged",
            a.flow
        );
        assert_eq!(a.reroutes, b.reroutes, "flow {} reroutes diverged", a.flow);
        assert_eq!(a.parked_time.to_bits(), b.parked_time.to_bits());
    }
    assert_eq!(r1.makespan.to_bits(), r4.makespan.to_bits());
    assert_eq!(
        r1.trace, r4.trace,
        "JSONL trace diverged across thread counts"
    );
}

#[test]
fn des_reproduces_legacy_on_event_free_trace() {
    let (net, flows, _) = fixture();
    let legacy = Simulator::new(&net, RouterPolicy::Ecmp).run(&flows, &[], 1e9);
    let des = DesSimulator::new(&net, RouterPolicy::Ecmp)
        .run(&flows, &[], 1e9)
        .unwrap();
    assert_eq!(legacy.flows.len(), des.flows.len());
    for (a, b) in legacy.flows.iter().zip(&des.flows) {
        match (a.completion, b.completion) {
            (Some(ca), Some(cb)) => assert!(
                (ca - cb).abs() < 1e-9,
                "flow {}: legacy {ca} vs des {cb}",
                a.flow
            ),
            (None, None) => {}
            other => panic!("flow {}: finished-state mismatch {other:?}", a.flow),
        }
    }
    assert!(
        (legacy.makespan - des.makespan).abs() < 1e-9,
        "makespan: {} vs {}",
        legacy.makespan,
        des.makespan
    );
    assert_eq!(des.unfinished(), 0);
}

/// Under mid-run failures the two engines are *not* expected to agree on
/// per-flow times: the legacy simulator repairs ECMP tables against a
/// freshly built `Network::switch_graph()`, which renumbers edge ids once
/// any link is dead, while the `removed` list (and later liveness checks)
/// stay in network edge-id space. The DES engine routes on the
/// id-preserving `Network::switch_view()` instead, so its repairs are
/// consistent by construction. This test therefore pins the robust
/// invariants both engines must satisfy — every flow still completes, the
/// failures actually force re-routes, and restoring a link never strands a
/// flow — rather than bitwise parity (which DESIGN.md §14 only requires on
/// failure-free, conversion-free traces).
#[test]
fn des_survives_link_failures_like_legacy() {
    let (net, flows, _) = fixture();
    // fail and restore two core-aggregation links mid-run
    let agg_core: Vec<_> = net
        .graph()
        .edges()
        .filter(|&(_, a, b)| {
            use flat_tree::topo::DeviceKind::*;
            matches!(
                (net.kind(a), net.kind(b)),
                (Core, Aggregation) | (Aggregation, Core)
            )
        })
        .map(|(e, _, _)| e)
        .take(2)
        .collect();
    let legacy_events: Vec<_> = vec![
        flat_tree::sim::NetworkEvent::LinkDown(2.0, agg_core[0]),
        flat_tree::sim::NetworkEvent::LinkDown(3.0, agg_core[1]),
        flat_tree::sim::NetworkEvent::LinkUp(6.0, agg_core[0]),
    ];
    let des_events: Vec<_> = vec![
        TopoEvent::LinkDown(2.0, agg_core[0]),
        TopoEvent::LinkDown(3.0, agg_core[1]),
        TopoEvent::LinkUp(6.0, agg_core[0]),
    ];
    let legacy = Simulator::new(&net, RouterPolicy::Ecmp).run(&flows, &legacy_events, 1e9);
    let des = DesSimulator::new(&net, RouterPolicy::Ecmp)
        .run(&flows, &des_events, 1e9)
        .unwrap();
    assert_eq!(legacy.flows.len(), des.flows.len());
    assert!(legacy.flows.iter().all(|f| f.completion.is_some()));
    assert_eq!(des.unfinished(), 0, "a failure stranded a DES flow");
    let des_reroutes: usize = des.flows.iter().map(|f| f.reroutes).sum();
    assert!(des_reroutes > 0, "failures should have forced re-routes");
    assert!(des.makespan.is_finite() && des.makespan > 6.0);
}

#[test]
fn conversion_repeat_runs_identical() {
    let a = run_conversion();
    let b = run_conversion();
    assert_eq!(a.completion_checksum(), b.completion_checksum());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.scheduled, b.scheduled);
}
