//! §3.4 integration: hybrid-mode zone isolation at test scale.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::graph::NodeId;
use flat_tree::mcf::{aggregate_commodities, Commodity};
use flat_tree::metrics::throughput::{throughput_on_commodities, ThroughputOptions};
use flat_tree::topo::Network;
use flat_tree::workload::{generate_on, Locality, TrafficPattern, WorkloadSpec};

fn zone_servers(net: &Network, pods: std::ops::Range<usize>) -> Vec<NodeId> {
    net.servers()
        .filter(|&s| net.pod(s).is_some_and(|p| pods.contains(&(p as usize))))
        .collect()
}

fn commodities(net: &Network, servers: &[NodeId], spec: &WorkloadSpec) -> Vec<Commodity> {
    aggregate_commodities(generate_on(net, servers, spec, 9).switch_triples(net))
}

#[test]
fn zones_match_complete_networks() {
    let k = 6;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let opts = ThroughputOptions::fptas(0.1);

    let full_global = ft.materialize(&Mode::GlobalRandom).unwrap();
    let full_local = ft.materialize(&Mode::LocalRandom).unwrap();

    for global_pods in [2usize, 3, 4] {
        let hybrid = ft.materialize(&Mode::two_zone(k, global_pods)).unwrap();
        let servers_a = zone_servers(&hybrid, 0..global_pods);
        let servers_b = zone_servers(&hybrid, global_pods..k);
        let spec_a = WorkloadSpec {
            pattern: TrafficPattern::HotSpot,
            cluster_size: 1000,
            locality: Locality::Strong,
        };
        let spec_b = WorkloadSpec {
            pattern: TrafficPattern::AllToAll,
            cluster_size: 9,
            locality: Locality::Strong,
        };
        let com_a = commodities(&hybrid, &servers_a, &spec_a);
        let com_b = commodities(&hybrid, &servers_b, &spec_b);
        let zone_a = throughput_on_commodities(&hybrid, &com_a, opts)
            .unwrap()
            .lambda;
        let zone_b = throughput_on_commodities(&hybrid, &com_b, opts)
            .unwrap()
            .lambda;
        let ref_a = throughput_on_commodities(
            &full_global,
            &commodities(&full_global, &servers_a, &spec_a),
            opts,
        )
        .unwrap()
        .lambda;
        let ref_b = throughput_on_commodities(
            &full_local,
            &commodities(&full_local, &servers_b, &spec_b),
            opts,
        )
        .unwrap()
        .lambda;
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        assert!(
            rel(zone_a, ref_a) <= 0.2,
            "global zone ({global_pods} pods): hybrid {zone_a} vs complete {ref_a}"
        );
        assert!(
            rel(zone_b, ref_b) <= 0.2,
            "local zone: hybrid {zone_b} vs complete {ref_b}"
        );

        // joint solve must not collapse either zone
        let mut joint = com_a.clone();
        joint.extend_from_slice(&com_b);
        let joint_lambda = throughput_on_commodities(&hybrid, &joint, opts)
            .unwrap()
            .lambda;
        assert!(
            joint_lambda >= 0.75 * zone_a.min(zone_b),
            "joint λ {joint_lambda} collapsed below zones ({zone_a}, {zone_b})"
        );
    }
}

/// Three-way hybrid: Clos, local-RG and global-RG zones coexisting. Each
/// zone's workload must still achieve its dedicated-network throughput.
#[test]
fn three_zone_hybrid_isolation() {
    use flat_tree::core::PodMode;
    let k = 6;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let opts = ThroughputOptions::fptas(0.1);
    let mode = Mode::Hybrid(vec![
        PodMode::GlobalRandom,
        PodMode::GlobalRandom,
        PodMode::LocalRandom,
        PodMode::LocalRandom,
        PodMode::Clos,
        PodMode::Clos,
    ]);
    let hybrid = ft.materialize(&mode).unwrap();
    hybrid.validate().unwrap();

    let zones: [(std::ops::Range<usize>, Mode, WorkloadSpec); 3] = [
        (
            0..2,
            Mode::GlobalRandom,
            WorkloadSpec {
                pattern: TrafficPattern::HotSpot,
                cluster_size: 1000,
                locality: Locality::Strong,
            },
        ),
        (
            2..4,
            Mode::LocalRandom,
            WorkloadSpec {
                pattern: TrafficPattern::AllToAll,
                cluster_size: 9,
                locality: Locality::Strong,
            },
        ),
        (
            4..6,
            Mode::Clos,
            WorkloadSpec {
                pattern: TrafficPattern::AllToAll,
                cluster_size: 9,
                locality: Locality::Strong,
            },
        ),
    ];
    for (pods, ref_mode, spec) in zones {
        let servers = zone_servers(&hybrid, pods.clone());
        let com = commodities(&hybrid, &servers, &spec);
        let lambda = throughput_on_commodities(&hybrid, &com, opts)
            .unwrap()
            .lambda;
        let reference = ft.materialize(&ref_mode).unwrap();
        let ref_com = commodities(&reference, &servers, &spec);
        let ref_lambda = throughput_on_commodities(&reference, &ref_com, opts)
            .unwrap()
            .lambda;
        let rel = (lambda - ref_lambda).abs() / ref_lambda.max(1e-12);
        assert!(
            rel <= 0.25,
            "zone {pods:?} ({}): hybrid {lambda} vs dedicated {ref_lambda}",
            ref_mode.label()
        );
    }
}
