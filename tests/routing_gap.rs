//! The routing gap: the paper evaluates throughput under *optimal routing*
//! (§3.1) but prescribes k-shortest-paths routing for deployment (§2.6).
//! These tests quantify the gap end-to-end and pin its expected shape.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::mcf::{
    aggregate_commodities, k_shortest_arc_paths, max_concurrent_flow_exact,
    max_concurrent_flow_on_paths, CapGraph, Commodity,
};
use flat_tree::topo::Network;
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn setup(net: &Network, seed: u64) -> (CapGraph, Vec<Commodity>) {
    let spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::Strong,
    };
    let tm = generate(net, &spec, seed);
    let cg = CapGraph::from_graph(&net.switch_graph(), 1.0);
    let mut cs = aggregate_commodities(tm.switch_triples(net));
    // subsample: the exact LP is O((K·A)³)-ish in the dense simplex; a
    // spread of ~15 commodities keeps the test meaningful and fast
    if cs.len() > 15 {
        let step = cs.len().div_ceil(15);
        cs = cs.into_iter().step_by(step).collect();
    }
    (cg, cs)
}

#[test]
fn ksp_routing_within_modest_gap_of_optimal() {
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
    for mode in [Mode::Clos, Mode::GlobalRandom] {
        let net = ft.materialize(&mode).unwrap();
        let (cg, cs) = setup(&net, 3);
        if cs.is_empty() {
            continue;
        }
        let optimal = max_concurrent_flow_exact(&cg, &cs).unwrap();
        let paths: Vec<_> = cs.iter().map(|c| k_shortest_arc_paths(&cg, c, 8)).collect();
        let routed = max_concurrent_flow_on_paths(&cg, &cs, &paths).unwrap();
        assert!(
            routed <= optimal + 1e-6,
            "{mode:?}: path-restricted {routed} beats optimal {optimal}"
        );
        assert!(
            routed >= 0.6 * optimal,
            "{mode:?}: 8 shortest paths lose too much: {routed} vs {optimal}"
        );
    }
}

#[test]
fn more_paths_monotonically_close_the_gap() {
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(4).unwrap()).unwrap();
    let net = ft.materialize(&Mode::GlobalRandom).unwrap();
    let (cg, cs) = setup(&net, 5);
    let optimal = max_concurrent_flow_exact(&cg, &cs).unwrap();
    let mut prev = 0.0;
    for k in [1usize, 2, 8] {
        let paths: Vec<_> = cs.iter().map(|c| k_shortest_arc_paths(&cg, c, k)).collect();
        let routed = max_concurrent_flow_on_paths(&cg, &cs, &paths).unwrap();
        assert!(
            routed >= prev - 1e-9,
            "k = {k}: λ regressed from {prev} to {routed}"
        );
        assert!(routed <= optimal + 1e-6);
        prev = routed;
    }
}
