//! Property-based cross-crate tests: invariants that must hold for *every*
//! valid flat-tree configuration, not just the paper's.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode, PodMode};
use flat_tree::graph::stats::is_connected;
use flat_tree::metrics::path_length::average_server_path_length;
use flat_tree::topo::fat_tree;
use proptest::prelude::*;

/// Arbitrary valid (k, m, n): k even in [4, 16], m + n ≤ k/2, m, n ≥ 1.
fn arb_kmn() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..=8)
        .prop_map(|h| 2 * h) // even k
        .prop_flat_map(|k| {
            let limit = k / 2;
            (1usize..limit)
                .prop_flat_map(move |m| (Just(m), 1usize..=(limit - m)))
                .prop_map(move |(m, n)| (k, m, n))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (k, m, n) conserves equipment in every uniform mode.
    #[test]
    fn equipment_conserved_for_all_configs((k, m, n) in arb_kmn()) {
        let reference = fat_tree(k).unwrap().equipment();
        let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom] {
            let net = ft.materialize(&mode).unwrap();
            prop_assert_eq!(net.equipment(), reference);
            net.validate().unwrap();
        }
    }

    /// Clos mode is the fat-tree for every configuration, independent of
    /// m, n and the wiring pattern (all converters default ⇒ all original
    /// links restored).
    #[test]
    fn clos_identity_for_all_configs((k, m, n) in arb_kmn()) {
        let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        prop_assert_eq!(
            ft.materialize(&Mode::Clos).unwrap().graph().canonical_edges(),
            fat_tree(k).unwrap().graph().canonical_edges()
        );
    }

    /// Local-random mode never disconnects the network (the Clos
    /// edge–aggregation mesh plus Pod-core wiring always remain).
    #[test]
    fn local_mode_connected((k, m, n) in arb_kmn()) {
        let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n).unwrap();
        let net = FlatTree::new(cfg).unwrap().materialize(&Mode::LocalRandom).unwrap();
        prop_assert!(is_connected(net.graph()));
    }

    /// Arbitrary hybrid assignments materialize, validate and stay
    /// connected when n ≥ 1 keeps each pod wired to its cores.
    #[test]
    fn random_hybrid_assignments_work(
        (k, m, n) in arb_kmn(),
        seed in 0u64..1000,
    ) {
        let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        // derive a pseudo-random pod-mode assignment from the seed
        let modes: Vec<PodMode> = (0..k)
            .map(|p| match (seed >> (2 * (p % 16))) % 3 {
                0 => PodMode::Clos,
                1 => PodMode::LocalRandom,
                _ => PodMode::GlobalRandom,
            })
            .collect();
        let net = ft.materialize(&Mode::Hybrid(modes)).unwrap();
        net.validate().unwrap();
        prop_assert!(is_connected(net.graph()));
    }

    /// Flattening helps *for the profiled configuration* (m = k/8,
    /// n = 2k/8): global-random APL beats Clos APL for k ≥ 6. For
    /// arbitrary (m, n) this is false — extreme m starves core switches of
    /// fabric links and lengthens (or even disconnects) paths, which is
    /// exactly why the paper profiles m and n (§2.4).
    #[test]
    fn profiled_global_mode_shortens_paths(k in 3usize..=8) {
        let k = 2 * k; // even, 6..=16
        let cfg = FlatTreeConfig::for_fat_tree_k(k).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        let clos = average_server_path_length(&ft.materialize(&Mode::Clos).unwrap());
        let flat = average_server_path_length(&ft.materialize(&Mode::GlobalRandom).unwrap());
        prop_assert!(flat < clos, "flat {} vs clos {}", flat, clos);
    }

    /// Conversion planning is symmetric: |plan(A→B)| == |plan(B→A)| and
    /// reversing swaps the link sets.
    #[test]
    fn plans_are_symmetric((k, m, n) in arb_kmn()) {
        use flat_tree::control::plan_transition;
        let cfg = FlatTreeConfig::for_fat_tree_k_mn(k, m, n).unwrap();
        let ft = FlatTree::new(cfg).unwrap();
        let a = ft.resolve(&Mode::Clos).unwrap();
        let b = ft.resolve(&Mode::GlobalRandom).unwrap();
        let ab = plan_transition(&ft, &a, &b).unwrap();
        let ba = plan_transition(&ft, &b, &a).unwrap();
        prop_assert_eq!(ab.converter_ops(), ba.converter_ops());
        prop_assert_eq!(ab.links_added, ba.links_removed);
        prop_assert_eq!(ab.links_removed, ba.links_added);
    }
}
