//! End-to-end trace analytics: run the DES conversion scenario with
//! `--trace`, then feed the span file back through `ftctl trace` and its
//! exports. One test function — the span sink and the `enabled` flag are
//! process-wide, so splitting this into parallel tests would race them.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use flat_tree::cli::{parse, run};

fn inv(args: &[&str]) -> flat_tree::cli::Invocation {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

#[test]
fn traced_conversion_run_analyzes_end_to_end() {
    let scn = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/clos_to_global.scn");
    let dir = std::env::temp_dir();
    let spans = dir.join("ft_trace_analytics_spans.jsonl");
    let spans_path = spans.to_str().unwrap();

    // 1. A traced sim run over the checked-in conversion scenario.
    let out = run(&inv(&[
        "sim",
        "--scenario",
        scn,
        "--quick",
        "--trace",
        spans_path,
    ]))
    .unwrap();
    assert!(out.contains("conversion"), "{out}");
    let body = std::fs::read_to_string(&spans).unwrap();
    assert!(body.contains("\"name\":\"sim.des\""), "{body}");
    assert!(body.contains("\"name\":\"des.timeline\""), "{body}");
    assert!(body.contains("\"name\":\"des.conversion_drain\""), "{body}");
    assert!(
        body.contains("\"name\":\"des.conversion_finish\""),
        "{body}"
    );
    assert!(body.contains("\"phase\":\"drain\""), "{body}");
    assert!(body.contains("\"phase\":\"post\""), "{body}");

    // 2. The analyzer renders aggregates, a critical path and the
    //    conversion disruption timeline from that file.
    let report = run(&inv(&["trace", spans_path])).unwrap();
    assert!(report.contains("trace report:"), "{report}");
    assert!(report.contains("span aggregates"), "{report}");
    assert!(report.contains("critical path (root sim.des"), "{report}");
    assert!(report.contains("conversion timeline ("), "{report}");
    assert!(report.contains("drain"), "{report}");
    assert!(report.contains("post"), "{report}");

    // 3. Exports: Chrome trace-event JSON and folded flamegraph stacks.
    let chrome = dir.join("ft_trace_analytics_chrome.json");
    let folded = dir.join("ft_trace_analytics.folded");
    run(&inv(&[
        "trace",
        spans_path,
        "--chrome",
        chrome.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
    ]))
    .unwrap();
    let chrome_body = std::fs::read_to_string(&chrome).unwrap();
    assert!(
        chrome_body.starts_with("{\"traceEvents\":["),
        "{chrome_body}"
    );
    assert!(chrome_body.contains("\"ph\":\"X\""), "{chrome_body}");
    assert!(chrome_body.contains("sim.des"), "{chrome_body}");
    let folded_body = std::fs::read_to_string(&folded).unwrap();
    assert!(!folded_body.trim().is_empty());
    for line in folded_body.lines() {
        let (stack, weight) = line.rsplit_once(' ').unwrap();
        assert!(!stack.is_empty(), "{line:?}");
        assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
    }
    assert!(folded_body.contains("sim.des"), "{folded_body}");

    // 4. Self-diff: identical traces produce an all-zero delta table.
    let diff = run(&inv(&["trace", spans_path, "--diff", spans_path])).unwrap();
    assert!(diff.contains("trace diff:"), "{diff}");
    assert!(diff.contains("+0.000"), "{diff}");
    assert!(!diff.contains("+0.001"), "self-diff must be zero: {diff}");

    for f in [spans, chrome, folded] {
        let _ = std::fs::remove_file(f);
    }
}
