//! End-to-end determinism of the parallel hot paths (DESIGN.md §10): the
//! results of the BFS-APSP tables (both the `u32` table and the compact
//! `u16` bitset-kernel matrix) and the FPTAS throughput solve must be
//! bit-identical for every `FT_THREADS` value. One test function, because
//! `FT_THREADS` is process-global state: running the two thread counts
//! sequentially inside a single test keeps the env mutation race-free
//! under the default parallel test runner.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::graph::{AllPairs, Csr, DistMatrix};
use flat_tree::mcf::{aggregate_commodities, max_concurrent_flow, CapGraph, FptasOptions};
use flat_tree::workload::{generate, Locality, WorkloadSpec};

/// λ, the `u32` APSP table, and the compact `u16` matrix (plus checksum)
/// for the k = 8 flat-tree in global random-graph mode under the current
/// `FT_THREADS` setting.
fn solve_k8() -> (f64, Vec<u32>, Vec<u16>, u64) {
    let net = FlatTree::new(FlatTreeConfig::for_fat_tree_k(8).unwrap())
        .unwrap()
        .materialize(&Mode::GlobalRandom)
        .unwrap();
    let sg = net.switch_graph();
    let csr = Csr::from_graph(&sg);
    let ap = AllPairs::compute_csr(&csr);
    let mut table = Vec::new();
    for v in 0..csr.node_count() {
        table.extend_from_slice(ap.row(v));
    }
    let dm = DistMatrix::compute_csr(&csr).unwrap();
    let mut compact = Vec::new();
    for v in 0..csr.node_count() {
        compact.extend_from_slice(dm.row(v));
    }
    let checksum = dm.checksum();

    let tm = generate(&net, &WorkloadSpec::hotspot(Locality::None), 1);
    let commodities = aggregate_commodities(tm.switch_triples(&net));
    let cg = CapGraph::from_graph(&sg, 1.0);
    let sol = max_concurrent_flow(
        &cg,
        &commodities,
        FptasOptions {
            epsilon: 0.15,
            max_steps: Some(50_000),
        },
    )
    .unwrap();
    assert!(
        !sol.budget_exhausted,
        "k=8 must converge inside the generous test budget"
    );
    (sol.lambda, table, compact, checksum)
}

#[test]
fn lambda_and_apsp_identical_across_thread_counts() {
    std::env::set_var("FT_THREADS", "1");
    let (lambda_1, table_1, compact_1, sum_1) = solve_k8();
    std::env::set_var("FT_THREADS", "4");
    let (lambda_4, table_4, compact_4, sum_4) = solve_k8();
    std::env::remove_var("FT_THREADS");

    assert_eq!(
        lambda_1.to_bits(),
        lambda_4.to_bits(),
        "FPTAS λ must be bit-identical: {lambda_1} (1 thread) vs {lambda_4} (4 threads)"
    );
    assert!(lambda_1.is_finite() && lambda_1 > 0.0, "λ = {lambda_1}");
    assert_eq!(table_1, table_4, "APSP table diverged across thread counts");
    assert_eq!(
        compact_1, compact_4,
        "bitset-kernel matrix diverged across thread counts"
    );
    assert_eq!(sum_1, sum_4, "checksum diverged across thread counts");
    // the compact matrix must also agree with the wide table it shadows
    let widened: Vec<u32> = compact_1.iter().map(|&d| u32::from(d)).collect();
    assert_eq!(table_1, widened, "u16 matrix disagrees with the u32 table");
}
