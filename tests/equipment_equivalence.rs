//! Cross-crate invariant: every topology in the evaluation is built from
//! the *same equipment* (§3.1) — same switch count, same port budget, same
//! server count — and every flat-tree mode conserves it exactly.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode, PodMode};
use flat_tree::topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, TwoStageParams,
};

#[test]
fn all_topologies_share_equipment() {
    for k in [4, 6, 8, 10, 12] {
        let reference = fat_tree(k).unwrap().equipment();
        let rg = jellyfish_matching_fat_tree(k, 3).unwrap().equipment();
        let ts = two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 3)
            .unwrap()
            .equipment();
        assert_eq!(reference.switches, rg.switches, "k = {k}");
        assert_eq!(reference.servers, rg.servers, "k = {k}");
        assert_eq!(
            reference.total_switch_ports, rg.total_switch_ports,
            "k = {k}"
        );
        assert_eq!(reference.switches, ts.switches, "k = {k}");
        assert_eq!(reference.servers, ts.servers, "k = {k}");
        assert_eq!(
            reference.total_switch_ports, ts.total_switch_ports,
            "k = {k}"
        );
    }
}

#[test]
fn every_mode_conserves_equipment_and_validates() {
    for k in [4, 6, 8, 10] {
        let reference = fat_tree(k).unwrap().equipment();
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        let hybrid = Mode::Hybrid(
            (0..k)
                .map(|p| match p % 3 {
                    0 => PodMode::Clos,
                    1 => PodMode::LocalRandom,
                    _ => PodMode::GlobalRandom,
                })
                .collect(),
        );
        for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom, hybrid] {
            let net = ft.materialize(&mode).unwrap();
            assert_eq!(net.equipment(), reference, "k = {k}, mode {mode:?}");
            net.validate()
                .unwrap_or_else(|e| panic!("k = {k}, {mode:?}: {e}"));
        }
    }
}

#[test]
fn clos_mode_is_fat_tree_for_every_k() {
    // k = 2 is excluded: the default (m, n) = (1, 1) needs m + n ≤ k/2 = 1
    for k in [4, 6, 8, 10, 12, 14] {
        let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
        assert_eq!(
            ft.materialize(&Mode::Clos)
                .unwrap()
                .graph()
                .canonical_edges(),
            fat_tree(k).unwrap().graph().canonical_edges(),
            "k = {k}"
        );
    }
}

#[test]
fn full_port_utilization_in_all_modes() {
    let k = 8;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom] {
        let net = ft.materialize(&mode).unwrap();
        for sw in net.switches() {
            assert_eq!(net.graph().degree(sw), k, "{mode:?} wastes ports on {sw:?}");
        }
    }
}

#[test]
fn no_single_points_of_failure_in_any_switch_fabric() {
    // every evaluation topology's switch fabric is bridge-free: no single
    // link failure can partition the switches
    use flat_tree::graph::bridges::bridges;
    let k = 8;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let mut fabrics = vec![
        fat_tree(k).unwrap(),
        jellyfish_matching_fat_tree(k, 4).unwrap(),
        two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 4).unwrap(),
    ];
    for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom] {
        fabrics.push(ft.materialize(&mode).unwrap());
    }
    for net in &fabrics {
        let sg = net.switch_graph();
        assert!(
            bridges(&sg).is_empty(),
            "{} has a single point of failure in its switch fabric",
            net.name()
        );
    }
}
