//! Flow-completion-time vs offered load — the classic transport-level view
//! of what convertibility buys (extension beyond the paper's LP numbers).
//!
//! ```text
//! cargo run --release --example load_sweep
//! ```
//!
//! The same hot-spot traffic matrix arrives repeatedly at increasing rates
//! (exponential inter-arrivals) on a flat-tree in Clos mode (ECMP routing)
//! and in approximated-global-random-graph mode (8-shortest-paths
//! routing). Mean FCT is reported per load level; the flattened topology
//! sustains the hot spot visibly deeper into the load range.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::sim::{flows_with_arrivals, RouterPolicy, Simulator};
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn main() {
    let k = 8;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let spec = WorkloadSpec {
        pattern: TrafficPattern::HotSpot,
        cluster_size: 64,
        locality: Locality::Strong,
    };
    let rates = [0.01, 0.05, 0.25, 1.0];
    let rounds = 3;

    println!(
        "mean FCT by offered load (hot-spot clusters, {} arrival rounds):\n",
        rounds
    );
    print!("{:<22}", "arrival rate");
    for r in &rates {
        print!("{r:>10}");
    }
    println!();
    println!("{}", "-".repeat(22 + 10 * rates.len()));

    let mut rows = Vec::new();
    for (mode, policy, label) in [
        (Mode::Clos, RouterPolicy::Ecmp, "clos + ECMP"),
        (Mode::GlobalRandom, RouterPolicy::Ksp(8), "global-rg + KSP8"),
    ] {
        let net = ft.materialize(&mode).unwrap();
        let tm = generate(&net, &spec, 11);
        print!("{label:<22}");
        let mut fcts = Vec::new();
        for &rate in &rates {
            let flows = flows_with_arrivals(&tm, 5.0, rate, rounds, 13);
            let report = Simulator::new(&net, policy).run(&flows, &[], 1e9);
            assert_eq!(report.unfinished(), 0);
            let fct = report.mean_fct(&flows);
            fcts.push(fct);
            print!("{fct:>10.2}");
        }
        println!();
        rows.push(fcts);
    }
    println!(
        "\nat the heaviest load the flattened fabric improves mean FCT by {:.0}%",
        100.0 * (1.0 - rows[1].last().unwrap() / rows[0].last().unwrap())
    );
}
