//! Topology zoo: build every topology family from the same equipment and
//! compare their structure.
//!
//! ```text
//! cargo run --release --example topology_zoo [-- k]
//! ```
//!
//! Prints the equipment inventory (identical by construction), structural
//! statistics (diameter, mean switch distance, path-length histogram) and
//! writes Graphviz DOT files to `target/topologies/` for visualization
//! with `dot -Tsvg`.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::graph::bridges::bridges;
use flat_tree::graph::stats::{diameter, mean_degree};
use flat_tree::metrics::path_length::{average_server_path_length, path_length_histogram};
use flat_tree::topo::export::to_dot;
use flat_tree::topo::{
    fat_tree, jellyfish_matching_fat_tree, two_stage_random_graph, Network, TwoStageParams,
};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("k must be an even integer"))
        .unwrap_or(8);
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();

    let zoo: Vec<(&str, Network)> = vec![
        ("fat-tree", fat_tree(k).unwrap()),
        ("random-graph", jellyfish_matching_fat_tree(k, 7).unwrap()),
        (
            "two-stage-rg",
            two_stage_random_graph(TwoStageParams::matching_fat_tree(k).unwrap(), 7).unwrap(),
        ),
        ("flat-tree-clos", ft.materialize(&Mode::Clos).unwrap()),
        (
            "flat-tree-local",
            ft.materialize(&Mode::LocalRandom).unwrap(),
        ),
        (
            "flat-tree-global",
            ft.materialize(&Mode::GlobalRandom).unwrap(),
        ),
    ];

    let eq = zoo[0].1.equipment();
    println!(
        "equipment (identical across the zoo): {} switches × {k} ports, {} servers, {} links\n",
        eq.switches, eq.servers, eq.links
    );
    println!(
        "{:<18} {:>9} {:>10} {:>8} {:>8} {:>24}",
        "topology", "diameter", "mean deg", "bridges", "APL", "hop histogram (2..)"
    );
    for (name, net) in &zoo {
        assert_eq!(net.equipment(), eq, "{name} must reuse the same hardware");
        let sg = net.switch_graph();
        let hist = path_length_histogram(net);
        let hist_str: Vec<String> = hist
            .iter()
            .enumerate()
            .skip(2)
            .map(|(h, &c)| format!("{h}:{c}"))
            .collect();
        println!(
            "{:<18} {:>9} {:>10.2} {:>8} {:>8.4} {:>24}",
            name,
            diameter(&sg).map(|d| d.to_string()).unwrap_or("∞".into()),
            mean_degree(&sg),
            bridges(&sg).len(),
            average_server_path_length(net),
            hist_str.join(" ")
        );
    }

    let dir = std::path::Path::new("target/topologies");
    std::fs::create_dir_all(dir).expect("create output dir");
    for (name, net) in &zoo {
        let path = dir.join(format!("{name}-k{k}.dot"));
        std::fs::write(&path, to_dot(net)).expect("write DOT");
    }
    println!("\nDOT files written to target/topologies/ (render with `dot -Tsvg`)");
}
