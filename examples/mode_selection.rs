//! Mode selection: which topology should the network convert to for a
//! given workload?
//!
//! ```text
//! cargo run --release --example mode_selection
//! ```
//!
//! Evaluates maximum-concurrent-flow throughput of all three flat-tree
//! modes under the paper's two workload archetypes (network-spanning
//! hot-spot clusters vs small all-to-all clusters), reproducing the
//! paper's core guidance in one table: global random graph for large
//! clusters, local random graphs for small ones, with Clos as the
//! placement-robust baseline.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::metrics::throughput::{throughput, ThroughputOptions};
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn main() {
    let k = 10;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let opts = ThroughputOptions {
        epsilon: 0.1,
        exact_threshold: 0,
        max_steps: Some(2_000_000),
        ..Default::default()
    };

    let workloads = [
        (
            "hot-spot (large clusters)",
            WorkloadSpec {
                pattern: TrafficPattern::HotSpot,
                cluster_size: 1000,
                locality: Locality::None,
            },
        ),
        (
            "all-to-all (20-server clusters)",
            WorkloadSpec {
                pattern: TrafficPattern::AllToAll,
                cluster_size: 20,
                locality: Locality::Strong,
            },
        ),
    ];
    let modes = [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom];

    println!("throughput λ by (workload × mode), flat-tree k = {k}:\n");
    print!("{:<34}", "workload");
    for m in &modes {
        print!("{:>12}", m.label());
    }
    println!("\n{}", "-".repeat(34 + 12 * modes.len()));
    for (name, spec) in &workloads {
        print!("{name:<34}");
        let mut best = (f64::MIN, "");
        for mode in &modes {
            let net = ft.materialize(mode).unwrap();
            let tm = generate(&net, spec, 5);
            let lambda = throughput(&net, &tm, opts).unwrap().lambda;
            if lambda > best.0 {
                best = (lambda, mode.label().leak());
            }
            print!("{lambda:>12.4}");
        }
        println!("   → best: {}", best.1);
    }
    println!(
        "\nthe paper's guidance falls out: convert to the global random graph for\n\
         large hot-spot clusters, to local random graphs for small all-to-all\n\
         clusters — and flat-tree can run both at once in hybrid mode."
    );
}
