//! Drive the in-process FTQ/1 query service with a mixed concurrent batch.
//!
//! Boots `ft-serve` on a k = 8 flat-tree, fires a multi-threaded mix of
//! `topo`/`paths`/`throughput`/`plan` requests, converts the network to the
//! global random graph between two `paths` rounds (watch the cache empty
//! and the answers change), and prints the final metrics report the service
//! dumps on shutdown.
//!
//! Run with: `cargo run --release --example serve_queries`

use flat_tree::serve::{Handle, ServeConfig, Service};

/// Issues each request on its own thread and prints the replies in order.
fn batch(handle: &Handle<'_>, title: &str, requests: &[&str]) {
    println!("-- {title}");
    let replies: Vec<String> = std::thread::scope(|s| {
        let joins: Vec<_> = requests
            .iter()
            .map(|r| s.spawn(move || handle.request(r)))
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("request thread panicked"))
            .collect()
    });
    for (req, reply) in requests.iter().zip(&replies) {
        println!("> {req}\n< {reply}");
    }
}

fn main() {
    let cfg = ServeConfig::for_k(8);
    let result = Service::run(cfg, |h| {
        batch(
            h,
            "round 1: Clos baseline (all misses, then hits)",
            &[
                "topo",
                "paths",
                "paths",
                "paths mode=hybrid:ggggllll",
                "throughput eps=0.3 cluster=8 pattern=permutation",
                "plan to=global-rg",
            ],
        );
        batch(
            h,
            "convert to the network-wide random graph",
            &["convert to=global-rg"],
        );
        batch(
            h,
            "round 2: same queries, new answers (cache was invalidated)",
            &["topo", "paths", "paths", "stats"],
        );
        batch(h, "graceful drain", &["shutdown deadline_ms=2000"]);
    });
    match result {
        Ok(((), report)) => println!("\n{report}"),
        Err(e) => {
            eprintln!("service failed: {e}");
            std::process::exit(1);
        }
    }
}
