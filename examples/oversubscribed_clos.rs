//! Converting a *generic, oversubscribed* Clos network — flat-tree's real
//! target (§3.1: "flat-tree targets at converting generic, especially
//! oversubscribed, Clos networks"; the fat-tree evaluation is a stress
//! test, not the deployment case).
//!
//! ```text
//! cargo run --release --example oversubscribed_clos
//! ```
//!
//! The data center here is a 3:1-oversubscribed Clos: each Pod has 4 edge
//! switches carrying 6 servers over just 2 uplinks each, and r = 2 edge
//! switches share each aggregation switch. Oversubscription makes the up-and-down
//! hierarchy hurt more — and flattening pay more.

use flat_tree::core::{FlatTree, FlatTreeConfig, InterPodWiring, Mode, WiringPattern};
use flat_tree::metrics::path_length::average_server_path_length;
use flat_tree::metrics::throughput::{throughput, ThroughputOptions};
use flat_tree::topo::ClosParams;
use flat_tree::workload::{generate, Locality, TrafficPattern, WorkloadSpec};

fn main() {
    let clos = ClosParams {
        pods: 6,
        d: 4,                // edge switches per pod
        r: 2,                // edges per aggregation switch
        h: 4,                // uplinks per aggregation switch
        servers_per_edge: 6, // 6 servers vs 2 uplinks per edge: 3:1 oversubscription
    };
    let cfg = FlatTreeConfig {
        clos,
        m: 1,
        n: 1,
        wiring: WiringPattern::Auto,
        inter_pod: InterPodWiring::Ring,
    };
    let ft = FlatTree::new(cfg).expect("valid oversubscribed layout");
    println!(
        "oversubscribed Clos: {} pods × ({} edge + {} agg), {} cores, {} servers",
        clos.pods,
        clos.d,
        clos.aggs_per_pod(),
        clos.cores(),
        clos.servers()
    );
    println!(
        "edge oversubscription: {} servers vs {} uplinks per edge switch\n",
        clos.servers_per_edge,
        clos.aggs_per_pod()
    );

    let spec = WorkloadSpec {
        pattern: TrafficPattern::HotSpot,
        cluster_size: 1000,
        locality: Locality::None,
    };
    let opts = ThroughputOptions {
        epsilon: 0.1,
        exact_threshold: 0,
        max_steps: Some(2_000_000),
        ..Default::default()
    };
    println!("{:<12} {:>8} {:>12}", "mode", "APL", "hot-spot λ");
    let mut rows = Vec::new();
    for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom] {
        let net = ft.materialize(&mode).unwrap();
        let apl = average_server_path_length(&net);
        let tm = generate(&net, &spec, 3);
        let lambda = throughput(&net, &tm, opts).unwrap().lambda;
        println!("{:<12} {:>8.4} {:>12.4}", mode.label(), apl, lambda);
        rows.push((apl, lambda));
    }
    let gain = rows[2].1 / rows[0].1;
    println!(
        "\nconverting the oversubscribed Clos to the global random graph buys {:.2}× hot-spot throughput",
        gain
    );
    assert!(gain > 1.0);
}
