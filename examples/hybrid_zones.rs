//! Hybrid-mode operations: a day in the life of the flat-tree controller.
//!
//! ```text
//! cargo run --release --example hybrid_zones
//! ```
//!
//! Scenario (the paper's §2.6 + §3.4 workflow):
//!
//! 1. the data center boots as a Clos network;
//! 2. two tenants arrive — a large analytics job with hot-spot traffic and
//!    a latency-sensitive web tier with small all-to-all clusters;
//! 3. the advisor measures both traffic matrices; the operator carves the
//!    Pods into two zones and the controller converts the topology —
//!    reporting exactly which converter switches flip and which logical
//!    links are rewired;
//! 4. per-zone throughput is evaluated on the hybrid topology and compared
//!    with what each workload would get from the whole network converted
//!    to its preferred mode.

use flat_tree::control::advisor::summarize;
use flat_tree::control::{recommend_mode, Controller, Zone};
use flat_tree::core::{FlatTreeConfig, Mode, PodMode};
use flat_tree::mcf::aggregate_commodities;
use flat_tree::metrics::throughput::{throughput_on_commodities, ThroughputOptions};
use flat_tree::topo::Network;
use flat_tree::workload::{generate_on, Locality, TrafficPattern, WorkloadSpec};

fn zone_servers(net: &Network, pods: std::ops::Range<usize>) -> Vec<flat_tree::graph::NodeId> {
    net.servers()
        .filter(|&s| net.pod(s).is_some_and(|p| pods.contains(&(p as usize))))
        .collect()
}

fn main() {
    let k = 8;
    let mut ctl = Controller::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    println!(
        "booted: mode = {}, {} conversions",
        ctl.mode().label(),
        ctl.conversions()
    );

    // Tenant workloads on their prospective zones.
    let analytics_pods = 0..k / 2;
    let web_pods = k / 2..k;
    let net = ctl.network().clone();
    let analytics_servers = zone_servers(&net, analytics_pods.clone());
    let web_servers = zone_servers(&net, web_pods.clone());
    let analytics_spec = WorkloadSpec {
        pattern: TrafficPattern::HotSpot,
        cluster_size: 1000,
        locality: Locality::Strong,
    };
    let web_spec = WorkloadSpec {
        pattern: TrafficPattern::AllToAll,
        cluster_size: 8,
        locality: Locality::Strong,
    };
    let analytics_tm = generate_on(&net, &analytics_servers, &analytics_spec, 42);
    let web_tm = generate_on(&net, &web_servers, &web_spec, 42);

    // Measure and consult the advisor per tenant.
    for (name, tm) in [("analytics", &analytics_tm), ("web", &web_tm)] {
        let s = summarize(&net, tm);
        println!(
            "{name}: {} flows, intra-Pod {:.0}%, hot-spot concentration {:.0}% → advisor: {}",
            tm.flow_count(),
            100.0 * s.intra_pod_fraction,
            100.0 * s.hotspot_concentration,
            recommend_mode(&s).label()
        );
    }

    // Carve zones accordingly and convert.
    let zones = [
        Zone::new("analytics", analytics_pods, PodMode::GlobalRandom),
        Zone::new("web", web_pods, PodMode::LocalRandom),
    ];
    let plan = ctl.organize_zones(&zones).unwrap();
    println!(
        "\nconversion plan: {} converter ops ({} four-port, {} six-port), {} links removed, {} added",
        plan.converter_ops(),
        plan.four_changes.len(),
        plan.six_changes.len(),
        plan.links_removed.len(),
        plan.links_added.len()
    );
    println!("now in mode {}", ctl.mode().label());

    // Evaluate per-zone throughput on the hybrid topology vs the
    // dedicated-network ideal.
    let hybrid = ctl.network().clone();
    let opts = ThroughputOptions {
        epsilon: 0.1,
        exact_threshold: 0,
        max_steps: Some(2_000_000),
        ..Default::default()
    };
    let flat = ctl.flat_tree();
    let dedicated_global = flat.materialize(&Mode::GlobalRandom).unwrap();
    let dedicated_local = flat.materialize(&Mode::LocalRandom).unwrap();
    println!("\n{:<12} {:>14} {:>16}", "zone", "hybrid λ", "dedicated λ");
    for (name, tm, dedicated) in [
        ("analytics", &analytics_tm, &dedicated_global),
        ("web", &web_tm, &dedicated_local),
    ] {
        let hybrid_lambda = throughput_on_commodities(
            &hybrid,
            &aggregate_commodities(tm.switch_triples(&hybrid)),
            opts,
        )
        .unwrap()
        .lambda;
        let dedicated_lambda = throughput_on_commodities(
            dedicated,
            &aggregate_commodities(tm.switch_triples(dedicated)),
            opts,
        )
        .unwrap()
        .lambda;
        println!("{name:<12} {hybrid_lambda:>14.4} {dedicated_lambda:>16.4}");
    }
    println!("\nzones share the core yet each keeps its dedicated-network throughput (§3.4)");
}
