//! Failure injection on a converted topology with the flow-level
//! simulator.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```
//!
//! The paper's conclusion points at "self-recovery of the topology from
//! failures" as a use of convertibility. This example exercises the
//! machinery underneath: long-lived flows cross a flat-tree in global
//! random-graph mode while core links fail and recover; the simulator
//! re-routes affected flows (k-shortest-paths routing, as the mode
//! prescribes) and reports completion times and re-route counts.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::sim::{FlowSpec, NetworkEvent, RouterPolicy, Simulator};
use flat_tree::topo::DeviceKind;

fn main() {
    let k = 8;
    let ft = FlatTree::new(FlatTreeConfig::for_fat_tree_k(k).unwrap()).unwrap();
    let net = ft.materialize(&Mode::GlobalRandom).unwrap();
    println!(
        "flat-tree k={k} in {} mode: {} switches, {} links",
        Mode::GlobalRandom.label(),
        net.num_switches(),
        net.graph().edge_count()
    );

    // Long-lived inter-Pod flows.
    let servers: Vec<_> = net.servers().collect();
    let flows: Vec<FlowSpec> = (0..32)
        .map(|i| FlowSpec {
            src: servers[i * 3 % servers.len()],
            dst: servers[(i * 7 + servers.len() / 2) % servers.len()],
            size: 20.0,
            start: 0.0,
        })
        .collect();

    // Fail 10% of core-adjacent links at t = 2, repair at t = 12.
    let core_links: Vec<_> = net
        .graph()
        .edges()
        .filter(|&(_, a, b)| net.kind(a) == DeviceKind::Core || net.kind(b) == DeviceKind::Core)
        .map(|(e, _, _)| e)
        .collect();
    let victims = &core_links[..core_links.len() / 10];
    let mut events = Vec::new();
    for &e in victims {
        events.push(NetworkEvent::LinkDown(2.0, e));
        events.push(NetworkEvent::LinkUp(12.0, e));
    }
    println!(
        "injecting {} link failures at t=2.0, repairing at t=12.0\n",
        victims.len()
    );

    // Baseline run without failures, then the failure run.
    let clean = Simulator::new(&net, RouterPolicy::Ksp(8)).run(&flows, &[], 1e9);
    let faulty = Simulator::new(&net, RouterPolicy::Ksp(8)).run(&flows, &events, 1e9);

    println!("{:<22} {:>12} {:>12}", "", "no failures", "with failures");
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "mean FCT",
        clean.mean_fct(&flows),
        faulty.mean_fct(&flows)
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "unfinished flows",
        clean.unfinished(),
        faulty.unfinished()
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "makespan",
        format!("{:.3}", clean.makespan),
        format!("{:.3}", faulty.makespan)
    );
    let reroutes: usize = faulty.flows.iter().map(|f| f.reroutes).sum();
    println!("{:<22} {:>12} {:>12}", "total re-routes", 0, reroutes);

    assert_eq!(
        faulty.unfinished(),
        0,
        "all flows must survive the failures"
    );
    println!("\nall flows completed despite failures — re-routing absorbed the loss ✓");
}
