//! Quickstart: build a flat-tree, convert it between modes, measure it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's core story in ~40 lines of API: a flat-tree is built
//! as a Clos network (identical to a fat-tree), then converted — by
//! reprogramming converter switches only — into approximated random
//! graphs, picking up most of the random graph's path-length advantage.

use flat_tree::core::{FlatTree, FlatTreeConfig, Mode};
use flat_tree::metrics::path_length::average_server_path_length;
use flat_tree::topo::{fat_tree, jellyfish_matching_fat_tree};

fn main() {
    let k = 8;
    println!("building flat-tree for fat-tree parameter k = {k}\n");

    // The paper's profiled configuration: m = k/8, n = 2k/8 converter
    // switches per edge/aggregation pair (§3.2).
    let cfg = FlatTreeConfig::for_fat_tree_k(k).expect("k = 8 is valid");
    println!(
        "configuration: m = {} six-port + n = {} four-port converters per pair, pattern {:?}",
        cfg.m,
        cfg.n,
        cfg.resolved_pattern()
    );
    let ft = FlatTree::new(cfg).expect("validated configuration");

    // Materialize each operation mode and measure it.
    println!(
        "\n{:<12} {:>9} {:>9} {:>8}",
        "mode", "switches", "links", "APL"
    );
    for mode in [Mode::Clos, Mode::LocalRandom, Mode::GlobalRandom] {
        let net = ft.materialize(&mode).unwrap();
        println!(
            "{:<12} {:>9} {:>9} {:>8.4}",
            mode.label(),
            net.num_switches(),
            net.graph().edge_count(),
            average_server_path_length(&net)
        );
    }

    // Clos mode is link-identical to the reference fat-tree.
    let clos = ft.materialize(&Mode::Clos).unwrap();
    let reference = fat_tree(k).unwrap();
    assert_eq!(
        clos.graph().canonical_edges(),
        reference.graph().canonical_edges()
    );
    println!("\nClos mode reproduces fat-tree(k={k}) link-for-link ✓");

    // And global mode approaches the true random graph's path length.
    let flat = average_server_path_length(&ft.materialize(&Mode::GlobalRandom).unwrap());
    let rg = average_server_path_length(&jellyfish_matching_fat_tree(k, 1).unwrap());
    println!(
        "global-random APL {flat:.4} vs true random graph {rg:.4} ({:+.1}%)",
        100.0 * (flat - rg) / rg
    );
}
